//! The user-facing programming interface (§IV, Fig. 4 of the paper).
//!
//! An application implements [`App`] with two serial UDFs:
//!
//! * [`App::task_spawn`] — how to create tasks from an individual vertex
//!   of the local vertex table;
//! * [`App::compute`] — how a task processes one iteration given the
//!   `frontier` of adjacency lists it pulled last iteration; returning
//!   `false` finishes the task.
//!
//! Both UDFs receive an environment handle for adding tasks
//! ([`SpawnEnv::add_task`] / [`ComputeEnv::add_task`]) and for
//! aggregator access. Everything else — vertex caching, pending-task
//! bookkeeping, batching, spilling, stealing — is the framework's job.

use crate::agg::{Aggregator, LocalAgg};
use gthinker_graph::adj::AdjList;
use gthinker_graph::ids::{Label, VertexId};
use gthinker_graph::trim::Trimmer;
use gthinker_task::codec::{Decode, Encode};
use gthinker_task::task::{Frontier, Task};

/// A G-thinker application.
pub trait App: Send + Sync + 'static {
    /// Per-task application state (the paper's `task.context`), e.g.
    /// the already-included vertex set `S` of a clique task. Must be
    /// codec-serializable so tasks can spill, migrate and checkpoint.
    type Context: Send + Encode + Decode + 'static;

    /// The application's aggregator (use [`crate::agg::NoAgg`] if
    /// unused).
    type Agg: Aggregator;

    /// Builds the aggregator instance for a job.
    fn make_aggregator(&self) -> Self::Agg;

    /// UDF: spawn zero or more tasks from local vertex `v` whose
    /// (trimmed) adjacency list is `adj`.
    fn task_spawn(&self, v: VertexId, adj: &AdjList, env: &mut SpawnEnv<'_, Self>);

    /// Batch-spawn hook: called once per claimed batch of unspawned
    /// vertices. The default forwards to [`App::task_spawn`] per
    /// vertex; override it to **bundle** several low-degree vertices
    /// into one task — the optimization the paper names as future work
    /// (its [38]) for the many-small-tasks regime where per-task
    /// subgraphs are too small to hide pull latency.
    fn task_spawn_batch(
        &self,
        verts: &[(VertexId, gthinker_graph::adj::SharedAdj, Option<Label>)],
        env: &mut SpawnEnv<'_, Self>,
    ) {
        for (v, adj, label) in verts {
            env.label = *label;
            self.task_spawn(*v, adj, env);
        }
    }

    /// UDF: process one iteration of `task`. `frontier` holds `(u,
    /// Γ(u))` for every vertex pulled in the previous iteration; those
    /// references are released when this returns, so copy what you need
    /// into `task.subgraph`. Pull more vertices with
    /// [`Task::pull`] and return `true` to be scheduled for
    /// another iteration; return `false` when finished.
    fn compute(
        &self,
        task: &mut Task<Self::Context>,
        frontier: &Frontier,
        env: &mut ComputeEnv<'_, Self>,
    ) -> bool;

    /// Optional adjacency trimmer applied once after graph loading
    /// (§IV item 7); `None` keeps lists untouched.
    fn trimmer(&self) -> Option<Box<dyn Trimmer>> {
        None
    }
}

/// Environment passed to [`App::task_spawn`].
pub struct SpawnEnv<'a, A: App + ?Sized> {
    pub(crate) new_tasks: Vec<Task<A::Context>>,
    pub(crate) agg: &'a LocalAgg<A::Agg>,
    pub(crate) label: Option<Label>,
}

impl<'a, A: App + ?Sized> SpawnEnv<'a, A> {
    pub(crate) fn new(agg: &'a LocalAgg<A::Agg>, label: Option<Label>) -> Self {
        SpawnEnv { new_tasks: Vec::new(), agg, label }
    }

    /// Adds a freshly spawned task to the calling comper's `Q_task`.
    pub fn add_task(&mut self, task: Task<A::Context>) {
        self.new_tasks.push(task);
    }

    /// The spawn vertex's label, if the graph is labeled.
    pub fn label(&self) -> Option<Label> {
        self.label
    }

    /// Contributes an item to the worker-local aggregator partial
    /// (e.g. a trivially answered vertex that needs no task).
    pub fn aggregate(&self, item: <A::Agg as Aggregator>::Item) {
        self.agg.aggregate(item);
    }

    /// Snapshot of the last broadcast global aggregate (for spawn-time
    /// pruning, e.g. Fig. 5 line 1).
    pub fn global(&self) -> <A::Agg as Aggregator>::Global {
        self.agg.global()
    }

    /// Reads the local partial and global aggregate together.
    pub fn read_agg<R>(
        &self,
        f: impl FnOnce(&<A::Agg as Aggregator>::Partial, &<A::Agg as Aggregator>::Global) -> R,
    ) -> R {
        self.agg.read(f)
    }

    pub(crate) fn take_tasks(&mut self) -> Vec<Task<A::Context>> {
        std::mem::take(&mut self.new_tasks)
    }
}

/// Environment passed to [`App::compute`].
pub struct ComputeEnv<'a, A: App + ?Sized> {
    pub(crate) new_tasks: Vec<Task<A::Context>>,
    pub(crate) agg: &'a LocalAgg<A::Agg>,
    pub(crate) labels: Option<&'a std::sync::Arc<Vec<Label>>>,
    pub(crate) output: Option<&'a crate::output::OutputSink>,
    pub(crate) budget: Option<u64>,
    pub(crate) splits: u64,
}

impl<'a, A: App + ?Sized> ComputeEnv<'a, A> {
    pub(crate) fn new(
        agg: &'a LocalAgg<A::Agg>,
        labels: Option<&'a std::sync::Arc<Vec<Label>>>,
        output: Option<&'a crate::output::OutputSink>,
        budget: Option<u64>,
    ) -> Self {
        ComputeEnv { new_tasks: Vec::new(), agg, labels, output, budget, splits: 0 }
    }

    /// The job's straggler-splitting budget
    /// ([`crate::config::JobConfig::compute_budget`]), if any. A UDF
    /// whose single `compute` call can run long (a deep serial
    /// search-tree expansion) should treat this as a hint to split its
    /// remaining work into fresh tasks via [`Self::add_task`] and
    /// report the fan-out with [`Self::note_split`].
    pub fn compute_budget(&self) -> Option<u64> {
        self.budget
    }

    /// Records that this `compute` call split a straggler into `n`
    /// fresh tasks instead of finishing it serially (feeds the
    /// `yields`/`split_tasks` counters).
    pub fn note_split(&mut self, n: u64) {
        self.splits += n;
    }

    pub(crate) fn take_splits(&mut self) -> u64 {
        std::mem::take(&mut self.splits)
    }

    /// Streams one output record to this worker's output file
    /// (enumerating workloads must not buffer their exponential output
    /// in memory — see [`crate::output`]).
    ///
    /// # Panics
    /// Panics if the job was configured without
    /// [`crate::config::JobConfig::output_dir`].
    pub fn emit(&self, record: &[u8]) {
        self.output.expect("ComputeEnv::emit requires JobConfig::output_dir").emit(record);
    }

    /// The label of any data-graph vertex.
    ///
    /// Labels are vertex-count-linear (2 bytes each), so the loader
    /// replicates the label table to every worker — the paper's
    /// `Vertex` value field would carry labels with each pulled
    /// adjacency list instead; replication avoids widening every
    /// response message and costs `2·|V|` bytes per machine.
    pub fn label_of(&self, v: VertexId) -> Option<Label> {
        self.labels.map(|l| l[v.index()])
    }

    /// Adds a decomposed subtask to the calling comper's `Q_task` (it
    /// may spill to disk and be picked up by any comper or stolen by
    /// another worker).
    pub fn add_task(&mut self, task: Task<A::Context>) {
        self.new_tasks.push(task);
    }

    /// Contributes an item to the worker-local aggregator partial.
    pub fn aggregate(&self, item: <A::Agg as Aggregator>::Item) {
        self.agg.aggregate(item);
    }

    /// Snapshot of the last broadcast global aggregate.
    pub fn global(&self) -> <A::Agg as Aggregator>::Global {
        self.agg.global()
    }

    /// Reads the local partial and global aggregate together — the
    /// freshest pruning information available on this worker.
    pub fn read_agg<R>(
        &self,
        f: impl FnOnce(&<A::Agg as Aggregator>::Partial, &<A::Agg as Aggregator>::Global) -> R,
    ) -> R {
        self.agg.read(f)
    }

    pub(crate) fn take_tasks(&mut self) -> Vec<Task<A::Context>> {
        std::mem::take(&mut self.new_tasks)
    }
}
