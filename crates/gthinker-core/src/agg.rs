//! Aggregators (§IV item 6 of the paper).
//!
//! Tasks aggregate data (e.g. the best clique found so far, or a
//! running triangle count) into a **worker-local partial**; worker main
//! threads periodically ship their partials to the master, which merges
//! them into a **global** value and broadcasts it back so that tasks on
//! every machine can prune against fresh information. A final
//! synchronization before job termination guarantees every task's
//! contribution is merged.

use gthinker_task::codec::{Decode, Encode};
use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

/// Application-defined aggregation logic.
pub trait Aggregator: Send + Sync + 'static {
    /// What a task contributes (e.g. a candidate clique, a count).
    type Item;
    /// Per-worker accumulated state; shipped to the master on sync.
    type Partial: Clone + Send + Sync + Encode + Decode + 'static;
    /// Globally merged state; broadcast to all workers.
    type Global: Clone + Send + Sync + Encode + Decode + 'static;

    /// Fresh empty partial (also the reset value after each sync).
    fn init_partial(&self) -> Self::Partial;
    /// Fresh global value at job start.
    fn init_global(&self) -> Self::Global;
    /// Folds one task contribution into the local partial.
    fn aggregate(&self, partial: &mut Self::Partial, item: Self::Item);
    /// Merges a worker's partial into the master's global value.
    fn merge(&self, global: &mut Self::Global, partial: &Self::Partial);
}

/// A no-op aggregator for applications that do not aggregate.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoAgg;

impl Aggregator for NoAgg {
    type Item = ();
    type Partial = ();
    type Global = ();
    fn init_partial(&self) {}
    fn init_global(&self) {}
    fn aggregate(&self, _partial: &mut (), _item: ()) {}
    fn merge(&self, _global: &mut (), _partial: &()) {}
}

/// The worker-side aggregator state: the mutable partial plus the last
/// broadcast global snapshot.
pub struct LocalAgg<G: Aggregator> {
    agg: Arc<G>,
    partial: Mutex<G::Partial>,
    global: RwLock<G::Global>,
}

impl<G: Aggregator> LocalAgg<G> {
    /// Creates worker-local state from the aggregator definition.
    pub fn new(agg: Arc<G>) -> Self {
        let partial = Mutex::new(agg.init_partial());
        let global = RwLock::new(agg.init_global());
        LocalAgg { agg, partial, global }
    }

    /// Folds a task contribution into the partial (called from
    /// `compute()` via the environment).
    pub fn aggregate(&self, item: G::Item) {
        self.agg.aggregate(&mut self.partial.lock(), item);
    }

    /// Snapshot of the last broadcast global value.
    pub fn global(&self) -> G::Global {
        self.global.read().clone()
    }

    /// Reads partial and global together (e.g. for freshest-bound
    /// pruning decisions that should consider local finds not yet
    /// synchronized).
    pub fn read<R>(&self, f: impl FnOnce(&G::Partial, &G::Global) -> R) -> R {
        let p = self.partial.lock();
        let g = self.global.read();
        f(&p, &g)
    }

    /// Takes the partial for shipping to the master, resetting it.
    pub fn take_partial(&self) -> G::Partial {
        std::mem::replace(&mut self.partial.lock(), self.agg.init_partial())
    }

    /// Installs a freshly broadcast global snapshot.
    pub fn set_global(&self, g: G::Global) {
        *self.global.write() = g;
    }

    /// Restores a partial (checkpoint resume).
    pub fn set_partial(&self, p: G::Partial) {
        *self.partial.lock() = p;
    }

    /// The aggregator definition.
    pub fn aggregator(&self) -> &Arc<G> {
        &self.agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simple summing aggregator for tests.
    struct Sum;
    impl Aggregator for Sum {
        type Item = u64;
        type Partial = u64;
        type Global = u64;
        fn init_partial(&self) -> u64 {
            0
        }
        fn init_global(&self) -> u64 {
            0
        }
        fn aggregate(&self, p: &mut u64, item: u64) {
            *p += item;
        }
        fn merge(&self, g: &mut u64, p: &u64) {
            *g += *p;
        }
    }

    #[test]
    fn aggregate_take_merge_cycle() {
        let agg = Arc::new(Sum);
        let local = LocalAgg::new(Arc::clone(&agg));
        local.aggregate(3);
        local.aggregate(4);
        let p = local.take_partial();
        assert_eq!(p, 7);
        // Partial reset after take.
        assert_eq!(local.take_partial(), 0);
        let mut global = agg.init_global();
        agg.merge(&mut global, &p);
        assert_eq!(global, 7);
        local.set_global(global);
        assert_eq!(local.global(), 7);
    }

    #[test]
    fn read_sees_partial_and_global() {
        let local = LocalAgg::new(Arc::new(Sum));
        local.aggregate(5);
        local.set_global(10);
        let combined = local.read(|p, g| p + g);
        assert_eq!(combined, 15);
    }

    #[test]
    fn concurrent_aggregation_is_lossless() {
        let local = Arc::new(LocalAgg::new(Arc::new(Sum)));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let l = Arc::clone(&local);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        l.aggregate(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(local.take_partial(), 80_000);
    }

    #[test]
    fn noagg_compiles_and_runs() {
        let local = LocalAgg::new(Arc::new(NoAgg));
        local.aggregate(());
        local.take_partial();
        local.global();
    }
}
