//! G-thinker core: a CPU-bound distributed framework for subgraph
//! mining, reproduced in Rust from the ICDE 2020 paper.
//!
//! Applications implement the [`App`] trait's two UDFs — `task_spawn`
//! and `compute` — and run them with [`run_job`]. The framework
//! provides the remote-vertex cache, per-comper task scheduling with
//! disk spilling, batched vertex pulling over a simulated cluster
//! interconnect, aggregator synchronization, master-coordinated work
//! stealing, distributed termination detection, and
//! suspend/resume checkpointing.
//!
//! ```
//! use gthinker_core::prelude::*;
//! use std::sync::Arc;
//!
//! /// Count every vertex by spawning a trivial task per vertex.
//! struct CountVertices;
//!
//! struct Count;
//! impl Aggregator for Count {
//!     type Item = u64;
//!     type Partial = u64;
//!     type Global = u64;
//!     fn init_partial(&self) -> u64 { 0 }
//!     fn init_global(&self) -> u64 { 0 }
//!     fn aggregate(&self, p: &mut u64, item: u64) { *p += item; }
//!     fn merge(&self, g: &mut u64, p: &u64) { *g += *p; }
//! }
//!
//! impl App for CountVertices {
//!     type Context = ();
//!     type Agg = Count;
//!     fn make_aggregator(&self) -> Count { Count }
//!     fn task_spawn(&self, _v: VertexId, _adj: &AdjList, env: &mut SpawnEnv<'_, Self>) {
//!         env.add_task(Task::new(()));
//!     }
//!     fn compute(&self, _t: &mut Task<()>, _f: &Frontier, env: &mut ComputeEnv<'_, Self>) -> bool {
//!         env.aggregate(1);
//!         false
//!     }
//! }
//!
//! let graph = gthinker_graph::gen::cycle(10);
//! let result = run_job(
//!     Arc::new(CountVertices),
//!     &graph,
//!     &JobConfig::single_machine(2),
//! ).unwrap();
//! assert_eq!(result.global, 10);
//! ```

pub mod agg;
pub mod api;
pub mod checkpoint;
pub mod cluster;
mod comper;
pub mod config;
pub mod job;
mod master;
pub mod metrics;
pub mod output;
mod worker;

pub use agg::{Aggregator, LocalAgg, NoAgg};
pub use api::{App, ComputeEnv, SpawnEnv};
pub use cluster::{
    run_worker_process, run_worker_process_on, run_worker_process_recovering,
    run_worker_process_recovering_on, run_worker_process_source,
    run_worker_process_source_observed, run_worker_process_source_on,
    run_worker_process_source_recovering_observed, ClusterRole, RecoveryOptions,
};
pub use config::{JobConfig, JobOutcome, JobResult, WorkerStats};
pub use job::{
    resume_job, resume_job_on, run_job, run_job_metrics_observed, run_job_observed, run_job_on,
    run_job_with_recovery, run_job_with_recovery_on, GraphSource, ProgressSnapshot, RecoveryReport,
};
pub use metrics::{ClusterTelemetry, MetricsRegistry, MetricsSnapshot, WorkerMetricsSnapshot};

/// Convenient glob-import surface for applications.
pub mod prelude {
    pub use crate::agg::{Aggregator, NoAgg};
    pub use crate::api::{App, ComputeEnv, SpawnEnv};
    pub use crate::config::{JobConfig, JobOutcome, JobResult};
    pub use crate::job::{
        resume_job, run_job, run_job_metrics_observed, run_job_observed, run_job_on,
        run_job_with_recovery, GraphSource, ProgressSnapshot, RecoveryReport,
    };
    pub use crate::metrics::{MetricsSnapshot, WorkerMetricsSnapshot};
    pub use gthinker_graph::adj::AdjList;
    pub use gthinker_graph::ids::{Label, VertexId};
    pub use gthinker_graph::subgraph::Subgraph;
    pub use gthinker_task::task::{Frontier, Task};
}
