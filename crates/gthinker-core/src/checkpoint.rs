//! Checkpointing for fault tolerance (§V-B "Fault Tolerance").
//!
//! The paper commits worker states — spilled file list, task queues,
//! pending/buffered tasks, spawn progress — plus outputs to HDFS; on
//! failure the job reruns from the latest checkpoint, with tasks from
//! `T_task`/`B_task` re-added to `Q_task` so they re-request their
//! vertices (the cache restarts cold).
//!
//! The reproduction writes one shard per worker plus a master manifest
//! to a local directory when a job **suspends** (after
//! `JobConfig::suspend_after`); `resume_job` restores the shards and
//! continues to completion. Unit and integration tests verify that
//! suspend + resume produces exactly the results of an uninterrupted
//! run.

use gthinker_task::codec::{from_bytes, to_bytes, CodecError, Decode, Encode};
use gthinker_task::task::Task;
use std::io;
use std::path::{Path, PathBuf};

/// One worker's checkpoint shard.
pub struct WorkerShard<C, P> {
    /// Spawn-pointer position in `T_local` load order.
    pub spawn_position: u64,
    /// Every in-memory and spilled task of this worker at suspension
    /// (queued + buffered + pending + spill files), pulls included —
    /// they re-request on resume.
    pub tasks: Vec<Task<C>>,
    /// The worker's unsynchronized aggregator partial.
    pub partial: P,
}

impl<C: Encode, P: Encode> Encode for WorkerShard<C, P> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.spawn_position.encode(buf);
        self.tasks.encode(buf);
        self.partial.encode(buf);
    }
}

impl<C: Decode, P: Decode> Decode for WorkerShard<C, P> {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(WorkerShard {
            spawn_position: u64::decode(buf)?,
            tasks: Vec::decode(buf)?,
            partial: P::decode(buf)?,
        })
    }
}

/// The master manifest: global aggregate + topology guard.
pub struct Manifest<G> {
    /// Worker count the checkpoint was taken with (resume must match).
    pub num_workers: u64,
    /// The master's merged global aggregate at suspension.
    pub global: G,
}

impl<G: Encode> Encode for Manifest<G> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.num_workers.encode(buf);
        self.global.encode(buf);
    }
}

impl<G: Decode> Decode for Manifest<G> {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Manifest { num_workers: u64::decode(buf)?, global: G::decode(buf)? })
    }
}

fn shard_path(dir: &Path, worker: usize) -> PathBuf {
    dir.join(format!("worker-{worker:04}.ckpt"))
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.ckpt")
}

/// Writes one worker's shard.
pub fn write_shard<C: Encode, P: Encode>(
    dir: &Path,
    worker: usize,
    shard: &WorkerShard<C, P>,
) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(shard_path(dir, worker), to_bytes(shard))
}

/// Reads one worker's shard.
pub fn read_shard<C: Decode, P: Decode>(
    dir: &Path,
    worker: usize,
) -> io::Result<WorkerShard<C, P>> {
    let bytes = std::fs::read(shard_path(dir, worker))?;
    from_bytes(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Writes the master manifest.
pub fn write_manifest<G: Encode>(dir: &Path, manifest: &Manifest<G>) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(manifest_path(dir), to_bytes(manifest))
}

/// Reads the master manifest.
pub fn read_manifest<G: Decode>(dir: &Path) -> io::Result<Manifest<G>> {
    let bytes = std::fs::read(manifest_path(dir))?;
    from_bytes(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gthinker_graph::adj::AdjList;
    use gthinker_graph::ids::VertexId;

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gthinker-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn shard_round_trip() {
        let dir = tempdir("shard");
        let mut t: Task<u32> = Task::new(9);
        t.subgraph.add_vertex(VertexId(1), AdjList::from_unsorted(vec![VertexId(2)]));
        t.pull(VertexId(2));
        let shard = WorkerShard { spawn_position: 17, tasks: vec![t], partial: 123u64 };
        write_shard(&dir, 3, &shard).unwrap();
        let back: WorkerShard<u32, u64> = read_shard(&dir, 3).unwrap();
        assert_eq!(back.spawn_position, 17);
        assert_eq!(back.partial, 123);
        assert_eq!(back.tasks.len(), 1);
        assert_eq!(back.tasks[0].pending_pulls(), &[VertexId(2)]);
    }

    #[test]
    fn manifest_round_trip() {
        let dir = tempdir("manifest");
        write_manifest(&dir, &Manifest { num_workers: 4, global: 55u64 }).unwrap();
        let m: Manifest<u64> = read_manifest(&dir).unwrap();
        assert_eq!(m.num_workers, 4);
        assert_eq!(m.global, 55);
    }

    #[test]
    fn missing_shard_is_io_error() {
        let dir = tempdir("missing");
        assert!(read_shard::<u32, u64>(&dir, 0).is_err());
    }
}
