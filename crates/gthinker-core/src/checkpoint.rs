//! Checkpointing for fault tolerance (§V-B "Fault Tolerance").
//!
//! The paper commits worker states — spilled file list, task queues,
//! pending/buffered tasks, spawn progress — plus outputs to HDFS; on
//! failure the job reruns from the latest checkpoint, with tasks from
//! `T_task`/`B_task` re-added to `Q_task` so they re-request their
//! vertices (the cache restarts cold).
//!
//! The reproduction writes one shard per worker plus a master manifest
//! to a local directory when a job **suspends** (after
//! `JobConfig::suspend_after`); `resume_job` restores the shards and
//! continues to completion. Unit and integration tests verify that
//! suspend + resume produces exactly the results of an uninterrupted
//! run.
//!
//! Files are **atomic and self-validating**: each is written to a
//! `*.tmp` sibling, fsynced, then renamed into place, and carries a
//! trailer of `crc32(payload) ‖ payload length`. A crash mid-write
//! leaves at worst a `*.tmp` orphan; a truncated or bit-flipped file
//! fails its read with a clean [`io::ErrorKind::InvalidData`] instead
//! of decoding garbage, which is what lets the recovery runner probe
//! for the last-known-good epoch.

use gthinker_task::codec::{from_bytes, to_bytes, CodecError, Decode, Encode};
use gthinker_task::task::Task;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// One worker's checkpoint shard.
pub struct WorkerShard<C, P> {
    /// Spawn-pointer position in `T_local` load order.
    pub spawn_position: u64,
    /// Every in-memory and spilled task of this worker at suspension
    /// (queued + buffered + pending + spill files), pulls included —
    /// they re-request on resume.
    pub tasks: Vec<Task<C>>,
    /// The worker's unsynchronized aggregator partial.
    pub partial: P,
}

impl<C: Encode, P: Encode> Encode for WorkerShard<C, P> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.spawn_position.encode(buf);
        self.tasks.encode(buf);
        self.partial.encode(buf);
    }
}

impl<C: Decode, P: Decode> Decode for WorkerShard<C, P> {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(WorkerShard {
            spawn_position: u64::decode(buf)?,
            tasks: Vec::decode(buf)?,
            partial: P::decode(buf)?,
        })
    }
}

/// The master manifest: global aggregate + topology guard.
pub struct Manifest<G> {
    /// Worker count the checkpoint was taken with (resume must match).
    pub num_workers: u64,
    /// The master's merged global aggregate at suspension.
    pub global: G,
}

impl<G: Encode> Encode for Manifest<G> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.num_workers.encode(buf);
        self.global.encode(buf);
    }
}

impl<G: Decode> Decode for Manifest<G> {
    fn decode(buf: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(Manifest { num_workers: u64::decode(buf)?, global: G::decode(buf)? })
    }
}

fn shard_path(dir: &Path, worker: usize) -> PathBuf {
    dir.join(format!("worker-{worker:04}.ckpt"))
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.ckpt")
}

// The CRC32 helper lives in the codec layer so the wire-frame format
// in `gthinker-net` shares the exact same integrity check; re-exported
// here because the checkpoint trailer is its original home.
pub use gthinker_task::codec::crc32;

/// Trailer: `crc32(payload)` (4 bytes LE) + payload length (8 bytes LE).
const TRAILER_LEN: usize = 12;

/// Writes `payload ‖ crc32 ‖ len` to `path.tmp`, fsyncs, and renames
/// into place so readers only ever see a complete file or none.
fn write_atomic(path: &Path, payload: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(payload)?;
        f.write_all(&crc32(payload).to_le_bytes())?;
        f.write_all(&(payload.len() as u64).to_le_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Reads a file written by [`write_atomic`], validating the length and
/// CRC trailer; truncation or corruption is a clean `InvalidData`.
fn read_validated(path: &Path) -> io::Result<Vec<u8>> {
    let mut bytes = std::fs::read(path)?;
    let corrupt = |what: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("checkpoint file {} is corrupt: {what}", path.display()),
        )
    };
    if bytes.len() < TRAILER_LEN {
        return Err(corrupt("shorter than its trailer"));
    }
    let payload_end = bytes.len() - TRAILER_LEN;
    let stored_len =
        u64::from_le_bytes(bytes[payload_end + 4..].try_into().expect("8 trailer bytes"));
    if stored_len != payload_end as u64 {
        return Err(corrupt("length trailer mismatch (truncated?)"));
    }
    let stored_crc =
        u32::from_le_bytes(bytes[payload_end..payload_end + 4].try_into().expect("4 crc bytes"));
    if crc32(&bytes[..payload_end]) != stored_crc {
        return Err(corrupt("CRC32 mismatch"));
    }
    bytes.truncate(payload_end);
    Ok(bytes)
}

/// Writes one worker's shard atomically with a CRC trailer.
pub fn write_shard<C: Encode, P: Encode>(
    dir: &Path,
    worker: usize,
    shard: &WorkerShard<C, P>,
) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    write_atomic(&shard_path(dir, worker), &to_bytes(shard))
}

/// Reads one worker's shard; truncation/corruption is `InvalidData`.
pub fn read_shard<C: Decode, P: Decode>(
    dir: &Path,
    worker: usize,
) -> io::Result<WorkerShard<C, P>> {
    let bytes = read_validated(&shard_path(dir, worker))?;
    from_bytes(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Writes the master manifest atomically with a CRC trailer.
pub fn write_manifest<G: Encode>(dir: &Path, manifest: &Manifest<G>) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    write_atomic(&manifest_path(dir), &to_bytes(manifest))
}

/// Reads the master manifest; truncation/corruption is `InvalidData`.
pub fn read_manifest<G: Decode>(dir: &Path) -> io::Result<Manifest<G>> {
    let bytes = read_validated(&manifest_path(dir))?;
    from_bytes(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Validates a whole checkpoint epoch: the manifest must exist, match
/// the expected topology, and every shard must read back clean. The
/// recovery runner accepts an epoch as last-known-good only after this
/// passes.
pub fn validate<C: Decode, P: Decode, G: Decode>(dir: &Path, num_workers: usize) -> io::Result<()> {
    let manifest: Manifest<G> = read_manifest(dir)?;
    if manifest.num_workers as usize != num_workers {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "checkpoint {} was taken with {} workers, expected {num_workers}",
                dir.display(),
                manifest.num_workers
            ),
        ));
    }
    for w in 0..num_workers {
        read_shard::<C, P>(dir, w)?;
    }
    Ok(())
}

/// Scans a recovery base directory for `epoch-<k>` subdirectories and
/// returns the highest epoch that validates end-to-end, with its path.
/// `None` when no epoch validates (resume from scratch). Used by a
/// freshly started master that has no in-memory last-known-good cache
/// — e.g. after the coordinating process itself was restarted.
pub fn latest_valid_epoch<C: Decode, P: Decode, G: Decode>(
    base: &Path,
    num_workers: usize,
) -> Option<(u64, PathBuf)> {
    let entries = std::fs::read_dir(base).ok()?;
    let mut epochs: Vec<(u64, PathBuf)> = entries
        .filter_map(|e| {
            let e = e.ok()?;
            let name = e.file_name().into_string().ok()?;
            let k: u64 = name.strip_prefix("epoch-")?.parse().ok()?;
            Some((k, e.path()))
        })
        .collect();
    epochs.sort_unstable_by_key(|(k, _)| std::cmp::Reverse(*k));
    epochs.into_iter().find(|(_, dir)| validate::<C, P, G>(dir, num_workers).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gthinker_graph::adj::AdjList;
    use gthinker_graph::ids::VertexId;

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gthinker-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn shard_round_trip() {
        let dir = tempdir("shard");
        let mut t: Task<u32> = Task::new(9);
        t.subgraph.add_vertex(VertexId(1), AdjList::from_unsorted(vec![VertexId(2)]));
        t.pull(VertexId(2));
        let shard = WorkerShard { spawn_position: 17, tasks: vec![t], partial: 123u64 };
        write_shard(&dir, 3, &shard).unwrap();
        let back: WorkerShard<u32, u64> = read_shard(&dir, 3).unwrap();
        assert_eq!(back.spawn_position, 17);
        assert_eq!(back.partial, 123);
        assert_eq!(back.tasks.len(), 1);
        assert_eq!(back.tasks[0].pending_pulls(), &[VertexId(2)]);
    }

    #[test]
    fn manifest_round_trip() {
        let dir = tempdir("manifest");
        write_manifest(&dir, &Manifest { num_workers: 4, global: 55u64 }).unwrap();
        let m: Manifest<u64> = read_manifest(&dir).unwrap();
        assert_eq!(m.num_workers, 4);
        assert_eq!(m.global, 55);
    }

    #[test]
    fn missing_shard_is_io_error() {
        let dir = tempdir("missing");
        assert!(read_shard::<u32, u64>(&dir, 0).is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    fn write_test_shard(dir: &Path) {
        let shard =
            WorkerShard { spawn_position: 5, tasks: Vec::<Task<u32>>::new(), partial: 9u64 };
        write_shard(dir, 0, &shard).unwrap();
    }

    #[test]
    fn bit_flip_is_detected_as_invalid_data() {
        let dir = tempdir("bitflip");
        write_test_shard(&dir);
        let path = dir.join("worker-0000.ckpt");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, bytes).unwrap();
        let err = read_shard::<u32, u64>(&dir, 0).err().expect("corrupt shard must not decode");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        assert!(err.to_string().contains("CRC32"), "{err}");
    }

    #[test]
    fn truncation_is_detected_as_invalid_data() {
        let dir = tempdir("truncate");
        write_test_shard(&dir);
        let path = dir.join("worker-0000.ckpt");
        let bytes = std::fs::read(&path).unwrap();
        // Cut the file mid-payload (keeping more than a trailer's worth
        // of bytes, so the length check has to catch it).
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        let err = read_shard::<u32, u64>(&dir, 0).err().expect("corrupt shard must not decode");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        // And a file shorter than the trailer itself.
        std::fs::write(&path, b"abc").unwrap();
        let err = read_shard::<u32, u64>(&dir, 0).err().expect("corrupt shard must not decode");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    }

    #[test]
    fn no_tmp_files_survive_a_write() {
        let dir = tempdir("tmpclean");
        write_test_shard(&dir);
        write_manifest(&dir, &Manifest { num_workers: 1, global: 1u64 }).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files must be renamed away: {leftovers:?}");
    }

    #[test]
    fn validate_accepts_complete_epoch_and_rejects_damage() {
        let dir = tempdir("validate");
        for w in 0..2 {
            let shard = WorkerShard {
                spawn_position: w as u64,
                tasks: Vec::<Task<u32>>::new(),
                partial: 0u64,
            };
            write_shard(&dir, w, &shard).unwrap();
        }
        write_manifest(&dir, &Manifest { num_workers: 2, global: 7u64 }).unwrap();
        assert!(validate::<u32, u64, u64>(&dir, 2).is_ok());
        // Wrong topology.
        let err = validate::<u32, u64, u64>(&dir, 3).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // Damage one shard: the epoch is no longer acceptable.
        let path = dir.join("worker-0001.ckpt");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        assert!(validate::<u32, u64, u64>(&dir, 2).is_err());
    }
}
