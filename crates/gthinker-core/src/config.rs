//! Job configuration and result/statistics types.

use crate::metrics::MetricsSnapshot;
use gthinker_graph::ids::WorkerId;
use gthinker_net::fault::FaultConfig;
use gthinker_net::router::LinkConfig;
use gthinker_net::tcp::TcpBackend;
use gthinker_store::cache::{CacheConfig, CacheSnapshot};
use std::path::PathBuf;
use std::time::Duration;

/// Configuration for one G-thinker job.
#[derive(Clone, Debug)]
pub struct JobConfig {
    /// Number of simulated worker machines.
    pub num_workers: usize,
    /// Comper (mining) threads per worker.
    pub compers_per_worker: usize,
    /// Network model between workers.
    pub link: LinkConfig,
    /// Remote-vertex cache configuration (`c_cache`, `α`, buckets, δ).
    pub cache: CacheConfig,
    /// Task-batch size `C` (paper default 150). `Q_task` holds `3C`.
    pub task_batch: usize,
    /// Gate `D` on `|T_task| + |B_task|` as a multiple of `C` (paper:
    /// `D = 8C` → factor 8).
    pub pending_factor: usize,
    /// Vertex pull requests per network message.
    pub request_batch: usize,
    /// Aggregator / progress synchronization period (paper default 1 s;
    /// the simulator defaults lower so short jobs still sync).
    pub sync_interval: Duration,
    /// Directory for spilled task batches (a per-job subdirectory is
    /// created inside).
    pub spill_dir: PathBuf,
    /// Enable work stealing between workers.
    pub work_stealing: bool,
    /// Enable intra-worker stealing: an idle comper refilling its
    /// `Q_task` may take the newest half of the largest sibling queue
    /// (between spilled files and fresh spawns in the refill priority).
    pub intra_steal: bool,
    /// Threads per worker serving inbound `VertexRequest` traffic, so
    /// adjacency-list cloning overlaps with response installation on
    /// the receiver thread. Clamped to at least 1.
    pub responders_per_worker: usize,
    /// Suspend the job (writing a checkpoint) after this long; used by
    /// the fault-tolerance path and tests.
    pub suspend_after: Option<Duration>,
    /// Directory checkpoints are written to when suspending.
    pub checkpoint_dir: Option<PathBuf>,
    /// When set, `ComputeEnv::emit` streams records to one
    /// `part-<worker>.out` file per worker in this directory (the
    /// paper's workers commit outputs to HDFS).
    pub output_dir: Option<PathBuf>,
    /// Capacity of each worker's scheduler/cache event ring (events
    /// kept, overwrite-oldest). 0 — the default — disables event
    /// recording entirely; the CLI sets it when `--trace-out` is given.
    pub trace_capacity: usize,
    /// Fault injection on the simulated interconnect (drops, dups,
    /// reorder jitter, latency spikes, scheduled crashes). Disabled by
    /// default; the chaos tests turn it on.
    pub fault: FaultConfig,
    /// Checkpoint cadence for `run_job_with_recovery`: the job suspends
    /// and writes an epoch this often. `None` (the default) means no
    /// periodic checkpoints — recovery falls back to rerunning from
    /// scratch.
    pub checkpoint_interval: Option<Duration>,
    /// How long the master waits without hearing from a worker before
    /// declaring it crashed (`JobOutcome::Failed`). `None` — the
    /// default — disables detection; `run_job_with_recovery` enables it
    /// (as does an armed crash schedule, so a killed worker cannot hang
    /// the job).
    pub heartbeat_timeout: Option<Duration>,
    /// Straggler splitting: when set, a task's `compute()` loop yields
    /// after this many extension steps (iterations that asked to
    /// proceed), re-enqueueing the task's remaining subtree so other
    /// compers — or remote thieves — can pick it up. UDFs can also read
    /// the budget via `ComputeEnv::compute_budget` to split their own
    /// search-tree state into fresh tasks. `None` (the default) never
    /// preempts a task.
    pub compute_budget: Option<u64>,
    /// Cluster telemetry streaming: when set, every worker pushes a
    /// compact metrics snapshot (no events) to the master this often,
    /// feeding the master's live cluster view (`--status`, the
    /// Prometheus exposition endpoint). `None` — the default — sends
    /// only the final end-of-job report on multi-worker runs, so the
    /// hot path is unchanged.
    pub report_interval: Option<Duration>,
    /// TCP data plane for multi-process cluster runs
    /// (`--net-backend`): the default evented plane (one `poll(2)`
    /// I/O thread per worker, pooled zero-copy frames, vectored
    /// writes) or the legacy threaded plane (reader thread per peer,
    /// synchronous writes) kept as the ablation baseline. Ignored by
    /// the in-process sim router.
    pub net_backend: TcpBackend,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            num_workers: 1,
            compers_per_worker: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
            link: LinkConfig::INSTANT,
            cache: CacheConfig::default(),
            task_batch: gthinker_task::queue::DEFAULT_BATCH,
            pending_factor: 8,
            request_batch: gthinker_net::batch::DEFAULT_REQUEST_BATCH,
            sync_interval: Duration::from_millis(20),
            spill_dir: std::env::temp_dir().join("gthinker-spill"),
            work_stealing: true,
            intra_steal: true,
            responders_per_worker: 2,
            suspend_after: None,
            checkpoint_dir: None,
            output_dir: None,
            trace_capacity: 0,
            fault: FaultConfig::default(),
            checkpoint_interval: None,
            heartbeat_timeout: None,
            compute_budget: None,
            report_interval: None,
            net_backend: TcpBackend::default(),
        }
    }
}

impl JobConfig {
    /// Convenience: a single-machine job with `compers` threads.
    pub fn single_machine(compers: usize) -> Self {
        JobConfig { num_workers: 1, compers_per_worker: compers, ..Default::default() }
    }

    /// Convenience: a simulated cluster of `workers` × `compers` with a
    /// GigE-like interconnect.
    pub fn cluster(workers: usize, compers: usize) -> Self {
        JobConfig {
            num_workers: workers,
            compers_per_worker: compers,
            link: LinkConfig::gige(),
            ..Default::default()
        }
    }

    /// The pending gate `D = pending_factor × C`.
    pub fn pending_limit(&self) -> usize {
        self.pending_factor * self.task_batch
    }
}

/// Per-worker statistics gathered during a job.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// Tasks whose `compute()` finished (returned `false`).
    pub tasks_finished: u64,
    /// Total `compute()` invocations (iterations).
    pub compute_calls: u64,
    /// Cache statistics (hits, shared waits, misses, evictions, GC
    /// passes) as a named snapshot.
    pub cache: CacheSnapshot,
    /// Bytes sent over the simulated network.
    pub net_bytes_sent: u64,
    /// Bytes received.
    pub net_bytes_received: u64,
    /// Bytes of task batches spilled to disk.
    pub spill_bytes: u64,
    /// Peak observed memory estimate (local table + cache + in-memory
    /// task subgraphs), in bytes.
    pub peak_mem_bytes: u64,
    /// Total time compers spent idle (no task to run), summed across
    /// compers.
    pub idle_time: Duration,
    /// Total time compers spent inside `compute()`.
    pub compute_time: Duration,
    /// Records emitted to this worker's output sink.
    pub output_records: u64,
    /// Intra-worker steal operations performed by this worker's compers.
    pub steals: u64,
    /// Tasks moved by intra-worker steals.
    pub stolen_tasks: u64,
    /// Times a comper parked on the scheduler event count.
    pub parks: u64,
    /// Parks that ended in an event wakeup rather than the fallback
    /// timeout.
    pub wakeups: u64,
    /// Vertices served to remote pull requests by the responder pool.
    pub responses_served: u64,
    /// Responder queue depth at job end (request batches dispatched but
    /// not yet served). A true gauge — 0 on a clean completion, since
    /// responders drain fully before the worker's threads join.
    pub responder_backlog: u64,
    /// Peak responder queue depth (request batches awaiting service).
    pub responder_peak_backlog: u64,
    /// Vertex pulls re-requested after their R-table deadline expired
    /// (loss tolerance; equals the cache's `retries` counter).
    pub pull_retries: u64,
    /// Cluster-wide steal batches this worker shipped to a remote thief
    /// (master-brokered; counted once per sealed batch at the victim).
    pub remote_steals: u64,
    /// Tasks moved off this worker by cluster-wide steals.
    pub remote_stolen_tasks: u64,
    /// Framed bytes of steal batches sent (resends counted again, since
    /// they really cross the wire again).
    pub steal_batch_bytes: u64,
    /// Times a task voluntarily yielded mid-compute: framework budget
    /// preemptions plus UDF `note_split` events.
    pub yields: u64,
    /// Tasks created by splitting: 1 per framework re-enqueue, `n` per
    /// UDF split that fanned a straggler into `n` fresh tasks.
    pub split_tasks: u64,
    /// Data-plane messages the fault-injected wire dropped on this
    /// worker's sends (0 with fault injection off).
    pub net_msgs_dropped: u64,
    /// Data-plane messages the fault-injected wire duplicated.
    pub net_msgs_duplicated: u64,
    /// Data-plane messages the fault-injected wire delayed (reorder
    /// jitter or latency spike).
    pub net_msgs_delayed: u64,
    /// Trace events lost to the event ring's overwrite-oldest
    /// recycling. Nonzero means the exported timeline is truncated —
    /// raise `trace_capacity` to keep more.
    pub trace_events_dropped: u64,
    /// Recovery rounds this worker's process went through (crash of any
    /// peer → abort-to-checkpoint → resume). 0 on a fault-free run.
    pub recoveries: u64,
    /// Transport-level peer-death events this worker's endpoint
    /// observed (socket EOF/reset surfaced as `PeerDown`). Always 0 on
    /// the sim backend.
    pub peer_down_events: u64,
    /// Times this worker's process re-joined an existing TCP mesh with
    /// a bumped generation (i.e. it was respawned after a crash).
    pub rejoins: u64,
    /// Checkpoint epoch the final (successful) attempt resumed from, or
    /// -1 when it started fresh.
    pub resumed_epoch: i64,
}

/// Why a job returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// Ran to completion; the aggregate is final.
    Completed,
    /// Suspended after `suspend_after`; a checkpoint was written and
    /// the job can be resumed with `resume_job`.
    Suspended {
        /// Checkpoint directory.
        checkpoint: PathBuf,
    },
    /// A worker stopped responding (crashed) and the master's heartbeat
    /// timeout fired; partial results are unreliable and the job should
    /// be rerun from the latest checkpoint (`run_job_with_recovery`
    /// does this automatically).
    Failed {
        /// The worker that went silent.
        worker: WorkerId,
    },
}

/// The result of a job.
#[derive(Clone, Debug)]
pub struct JobResult<G> {
    /// Final (or at-suspension) global aggregate.
    pub global: G,
    /// Wall-clock runtime.
    pub elapsed: Duration,
    /// Completion or suspension.
    pub outcome: JobOutcome,
    /// Per-worker statistics.
    pub workers: Vec<WorkerStats>,
    /// Full end-of-run metrics: per-comper latency histograms, named
    /// counters and (when `trace_capacity > 0`) the event timelines.
    /// Empty histograms when the `metrics` feature is disabled.
    pub metrics: MetricsSnapshot,
}

impl<G> JobResult<G> {
    /// Maximum per-worker peak memory (the paper's "peak VM memory,
    /// maximum over machines").
    pub fn peak_mem_bytes(&self) -> u64 {
        self.workers.iter().map(|w| w.peak_mem_bytes).max().unwrap_or(0)
    }

    /// Total network bytes sent by all workers.
    pub fn total_net_bytes(&self) -> u64 {
        self.workers.iter().map(|w| w.net_bytes_sent).sum()
    }

    /// Total tasks finished across workers.
    pub fn total_tasks(&self) -> u64 {
        self.workers.iter().map(|w| w.tasks_finished).sum()
    }

    /// Total bytes ever spilled to disk (the paper reports this as
    /// negligible).
    pub fn total_spill_bytes(&self) -> u64 {
        self.workers.iter().map(|w| w.spill_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper() {
        let c = JobConfig::default();
        assert_eq!(c.task_batch, 150);
        assert_eq!(c.pending_limit(), 1200, "D = 8C");
        assert_eq!(c.cache.capacity, 2_000_000);
        assert!((c.cache.alpha - 0.2).abs() < 1e-9);
        assert!(c.intra_steal, "intra-worker stealing is on by default");
        assert!(c.responders_per_worker >= 1);
    }

    #[test]
    fn cluster_config_uses_latency() {
        let c = JobConfig::cluster(4, 2);
        assert_eq!(c.num_workers, 4);
        assert_eq!(c.compers_per_worker, 2);
        assert!(!c.link.is_instant());
        let s = JobConfig::single_machine(3);
        assert!(s.link.is_instant());
    }

    #[test]
    fn result_accessors_aggregate_worker_stats() {
        let r = JobResult {
            global: (),
            elapsed: Duration::ZERO,
            outcome: JobOutcome::Completed,
            workers: vec![
                WorkerStats {
                    peak_mem_bytes: 10,
                    net_bytes_sent: 5,
                    tasks_finished: 2,
                    ..Default::default()
                },
                WorkerStats {
                    peak_mem_bytes: 30,
                    net_bytes_sent: 7,
                    tasks_finished: 3,
                    ..Default::default()
                },
            ],
            metrics: MetricsSnapshot::default(),
        };
        assert_eq!(r.peak_mem_bytes(), 30);
        assert_eq!(r.total_net_bytes(), 12);
        assert_eq!(r.total_tasks(), 5);
    }
}
