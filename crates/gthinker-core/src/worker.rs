//! Worker-internal shared state and the non-comper threads.
//!
//! Each simulated machine runs (Fig. 3 / §V):
//! * `n` **comper** threads ([`crate::comper`]),
//! * one **receiver** thread handling vertex pulls, steal transfers and
//!   control traffic,
//! * one **GC** thread keeping `T_cache` bounded,
//! * the **worker main** thread (in [`crate::job`]) doing periodic
//!   progress/aggregator synchronization (and, on worker 0, the master
//!   logic of [`crate::master`]).

use crate::agg::LocalAgg;
use crate::api::{App, SpawnEnv};
use crate::config::JobConfig;
use crossbeam::channel::Receiver;
use crossbeam::channel::Sender;
use gthinker_graph::ids::{VertexId, WorkerId};
use gthinker_graph::partition::HashPartitioner;
use gthinker_metrics::{
    now_nanos, ComperHists, Event, EventKind, WorkerMetrics, TID_GC, TID_RECEIVER,
};
use gthinker_net::batch::RequestBatcher;
use gthinker_net::frame;
use gthinker_net::message::Message;
use gthinker_net::transport::NetEndpoint;
use gthinker_store::cache::VertexCache;
use gthinker_store::local::LocalTable;
use gthinker_task::buffer::TaskBuffer;
use gthinker_task::codec::to_bytes;
use gthinker_task::park::EventCount;
use gthinker_task::pending::PendingTable;
use gthinker_task::queue::SharedTaskQueue;
use gthinker_task::spill::SpillManager;
use gthinker_task::task::Task;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Rough fixed overhead per in-memory task, on top of its subgraph.
const TASK_OVERHEAD_BYTES: usize = 128;

/// Nanoseconds of CPU time consumed by the calling thread.
///
/// Compute-time accounting must use *thread CPU time*, not wall-clock:
/// on a host with fewer cores than compers, a `compute()` call's
/// wall-time includes preemption by other threads, which would inflate
/// the per-comper work measurements the scalability analysis
/// (`modeled parallel time`) is built on.
pub(crate) fn thread_cpu_nanos() -> u64 {
    let mut ts = libc::timespec { tv_sec: 0, tv_nsec: 0 };
    // SAFETY: ts is a valid, writable timespec; the clock id is a
    // compile-time constant supported on all Linux targets.
    let rc = unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    debug_assert_eq!(rc, 0, "clock_gettime(CLOCK_THREAD_CPUTIME_ID) failed");
    ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
}

/// Estimated heap cost of a task (for the memory accounting the paper
/// reports as "peak VM memory").
pub(crate) fn task_cost<C>(t: &Task<C>) -> i64 {
    (t.subgraph.heap_bytes() + TASK_OVERHEAD_BYTES) as i64
}

/// Per-comper state shared with the receiver thread and with sibling
/// compers (which steal from `queue`).
pub(crate) struct ComperShared<C> {
    /// `B_task`: ready tasks moved here by the receiver.
    pub buffer: TaskBuffer<C>,
    /// `T_task`: pending tasks keyed by task ID.
    pub pending: PendingTable<C>,
    /// `Q_task`, behind a stealable structure so idle siblings can take
    /// the newest half (tail-latency scheduler, layer 1). Its cached
    /// length replaces the old `queue_len` mirror for quiescence.
    pub queue: SharedTaskQueue<C>,
    /// True while the comper is (or may be about to start) processing a
    /// task; set **before** checking task sources to close the
    /// quiescence race.
    pub busy: AtomicBool,
    /// Per-comper latency histograms (compute / e2e / park); merged
    /// lock-free at snapshot time by the metrics registry.
    pub hists: ComperHists,
}

impl<C> ComperShared<C> {
    fn new(task_batch: usize) -> Self {
        ComperShared {
            buffer: TaskBuffer::new(),
            pending: PendingTable::new(),
            queue: SharedTaskQueue::new(task_batch),
            busy: AtomicBool::new(true), // busy until the comper proves idle
            hists: ComperHists::new(),
        }
    }
}

/// Counters the comper, responder and GC threads update.
#[derive(Default)]
pub(crate) struct WorkerCounters {
    pub tasks_finished: AtomicU64,
    pub compute_calls: AtomicU64,
    pub compute_nanos: AtomicU64,
    pub idle_nanos: AtomicU64,
    /// Successful intra-worker steals by this worker's compers.
    pub steals: AtomicU64,
    /// Tasks moved by those steals.
    pub stolen_tasks: AtomicU64,
    /// Times a comper parked on the scheduler event count.
    pub parks: AtomicU64,
    /// Parks that ended in an event wakeup (the rest hit the fallback
    /// timeout — near zero when every wake source notifies correctly).
    pub wakeups: AtomicU64,
    /// Vertices served to remote pulls by the responder pool.
    pub responses_served: AtomicU64,
    /// Request batches queued to responders but not yet served (gauge).
    pub responder_backlog: AtomicU64,
    /// Peak of `responder_backlog`.
    pub responder_peak_backlog: AtomicU64,
    /// Vertex pulls re-sent after their R-table deadline expired (the
    /// loss-tolerance retry path in `worker_tick`).
    pub pull_retries: AtomicU64,
    /// Steal batches this worker shipped to other workers (victim
    /// side of the master-brokered cluster stealing protocol).
    pub remote_steals: AtomicU64,
    /// Tasks inside those shipped batches.
    pub remote_stolen_tasks: AtomicU64,
    /// Framed steal-batch bytes put on the wire, including resends of
    /// unacked batches.
    pub steal_batch_bytes: AtomicU64,
    /// Times a task gave up its comper before finishing because it
    /// exhausted the compute budget — framework-level re-enqueues in
    /// `drive_task` plus UDF-reported splits (`ComputeEnv::note_split`).
    pub yields: AtomicU64,
    /// Continuation tasks those yields produced (1 for a framework
    /// re-enqueue, `n` for a UDF split into `n` subtasks).
    pub split_tasks: AtomicU64,
}

/// One sealed, unacknowledged steal batch retained by the victim.
///
/// Ownership of the tasks inside stays with this worker until the
/// thief's [`Message::StealAck`] arrives: the resend path in
/// [`worker_tick`] re-sends the identical frame after `deadline`, and
/// the thief's per-`(victim, seq)` dedup makes redelivery idempotent.
/// Ownership therefore *overlaps* (thief spilled, victim not yet
/// acked) but never gaps — the invariant the extended quiescence
/// argument in DESIGN.md §12 rests on.
pub(crate) struct OutgoingSteal {
    /// Destination worker.
    pub thief: WorkerId,
    /// The exact framed payload; resends are byte-identical.
    pub framed: Vec<u8>,
    /// Tasks inside (checkpoint bookkeeping).
    pub tasks: u64,
    /// Next resend time.
    pub deadline: Instant,
}

/// Peer clock-offset estimation for cross-process trace stitching.
///
/// Non-master cluster workers ping the master (at most
/// [`ClockSync::MAX_SAMPLES`] times, one per tick) and estimate the
/// offset of the master's metrics clock from their own by the classic
/// RTT-midpoint rule: `offset = master_now - (t_send + t_recv) / 2`.
/// The estimate from the minimum-RTT exchange wins — the shorter the
/// round trip, the tighter the bound on where inside it the master
/// stamped its reply.
pub(crate) struct ClockSync {
    /// Send timestamps of outstanding pings, keyed by nonce.
    pending: Mutex<HashMap<u64, u64>>,
    /// Lowest RTT (nanos) among answered pings; `u64::MAX` until one
    /// lands.
    best_rtt: AtomicU64,
    /// Offset estimate from the minimum-RTT sample.
    offset: AtomicI64,
    /// Pings issued so far.
    sent: AtomicU64,
}

impl ClockSync {
    /// Samples after which pinging stops: enough ticks to catch one
    /// quiet round trip without adding control traffic forever.
    const MAX_SAMPLES: u64 = 8;

    fn new() -> Self {
        ClockSync {
            pending: Mutex::new(HashMap::new()),
            best_rtt: AtomicU64::new(u64::MAX),
            offset: AtomicI64::new(0),
            sent: AtomicU64::new(0),
        }
    }

    /// Starts one ping if the sample budget allows; returns its nonce.
    pub fn begin_ping(&self) -> Option<u64> {
        let nonce = self.sent.fetch_add(1, Ordering::Relaxed);
        if nonce >= Self::MAX_SAMPLES {
            return None;
        }
        self.pending.lock().insert(nonce, now_nanos());
        Some(nonce)
    }

    /// Absorbs the master's reply to `nonce`, stamped `master_nanos`
    /// on the master's metrics clock. Unknown or duplicated nonces are
    /// ignored (the control plane is reliable, but be defensive).
    pub fn on_pong(&self, nonce: u64, master_nanos: u64) {
        let Some(t_send) = self.pending.lock().remove(&nonce) else {
            return;
        };
        let t_recv = now_nanos();
        let rtt = t_recv.saturating_sub(t_send);
        if rtt < self.best_rtt.load(Ordering::Relaxed) {
            self.best_rtt.store(rtt, Ordering::Relaxed);
            let midpoint = (t_send / 2) + (t_recv / 2);
            self.offset.store(master_nanos as i64 - midpoint as i64, Ordering::Relaxed);
        }
    }

    /// Current estimate of `master_now - local_now` (0 until a pong
    /// lands, and always 0 on the master itself).
    pub fn offset_nanos(&self) -> i64 {
        self.offset.load(Ordering::Relaxed)
    }
}

/// Everything one worker's threads share.
pub(crate) struct WorkerShared<A: App> {
    pub me: WorkerId,
    pub app: Arc<A>,
    pub config: JobConfig,
    pub local: LocalTable,
    pub cache: VertexCache,
    pub spill: SpillManager,
    pub compers: Vec<ComperShared<A::Context>>,
    pub batcher: RequestBatcher,
    /// This worker's interconnect endpoint — a sim-router handle or a
    /// TCP mesh endpoint; worker threads cannot tell the difference.
    pub net: Box<dyn NetEndpoint>,
    pub agg: LocalAgg<A::Agg>,
    pub partitioner: HashPartitioner,
    /// Pull requests sent whose responses have not arrived (counted at
    /// the requester; part of the quiescence condition).
    pub outstanding_pulls: AtomicI64,
    /// Terminate signal (master broadcast or local decision).
    pub done: AtomicBool,
    /// Suspend signal (checkpoint-and-stop).
    pub suspend: AtomicBool,
    /// Set when the fault injector delivered a [`Message::Crash`]: the
    /// worker stops dead — no final aggregator sync, no checkpoint
    /// shard — modelling a machine that lost power.
    pub crashed: AtomicBool,
    /// Set when the master broadcast [`Message::Abort`]: a peer process
    /// died mid-job and every survivor must fall back to the last
    /// validated checkpoint. Unlike `crashed`, the surviving worker
    /// shuts down *cleanly* (final syncs still flow) so the recovery
    /// runner can rendezvous again and resume.
    pub aborted: AtomicBool,
    /// Cluster-recovery mode: on peer failure the master broadcasts
    /// [`Message::Abort`] (fall back to the checkpoint) instead of
    /// [`Message::Terminate`] (fail the job).
    pub abort_on_failure: AtomicBool,
    /// Recovery rounds this process has been through (telemetry).
    pub recoveries: AtomicU64,
    /// Times this process re-joined an existing mesh with a bumped
    /// generation (1 on a respawned worker, 0 otherwise).
    pub rejoins: AtomicU64,
    /// Checkpoint epoch the current attempt resumed from, or -1 for a
    /// fresh start (telemetry).
    pub resumed_epoch: AtomicI64,
    /// Set by the worker main thread once no further inbound messages
    /// matter; the receiver thread exits on it. Kept separate from
    /// `done`/`suspend` because control traffic (final aggregator
    /// syncs, checkpoint acks) must still flow *after* those fire.
    pub receiver_stop: AtomicBool,
    /// Estimated bytes of task subgraphs currently in memory.
    pub task_mem: AtomicI64,
    /// Peak of the per-tick memory estimate.
    pub peak_mem: AtomicU64,
    /// Wakes compers parked for lack of work. Notified by the receiver
    /// (`B_task` push, new spill file), by sibling compers (enqueue
    /// crossing the stealable threshold, overflow spill), by the GC
    /// (evictions reopening the pop gate) and on stop/suspend.
    pub sched_events: EventCount,
    /// Wakes the GC thread when the cache may have grown past its
    /// limit (receiver installed responses) or the worker is stopping.
    pub gc_events: EventCount,
    /// Wakes the worker main thread out of its sync-interval wait so
    /// shutdown is not bounded by the tick period.
    pub tick_events: EventCount,
    pub counters: WorkerCounters,
    /// First UDF panic observed on this worker (message), if any. A
    /// panicking `compute()`/`task_spawn()` must not strand the job in
    /// a never-quiescent state: the comper records it here, the worker
    /// main thread broadcasts termination, and `run_job` re-panics with
    /// the original message once every thread has shut down.
    pub failure: Mutex<Option<String>>,
    /// Where compers park their residual `Q_task` contents at suspend.
    pub drained_queues: Mutex<Vec<Task<A::Context>>>,
    /// Victim-side ledger of sealed-but-unacked steal batches, keyed
    /// by sequence number. Entries are retained (and periodically
    /// resent by `worker_tick`) until the thief's `StealAck`.
    pub steal_outgoing: Mutex<HashMap<u64, OutgoingSteal>>,
    /// Mirror of `steal_outgoing`'s size, incremented *before* tasks
    /// leave a local source for a batch under assembly — part of the
    /// quiescence predicate, so in-flight steal batches count as
    /// outstanding work.
    pub steal_inflight: AtomicU64,
    /// Next outgoing steal-batch sequence number.
    pub steal_seq: AtomicU64,
    /// Thief-side dedup ledger: per victim, every sequence number
    /// already applied to the local `L_file`. A duplicated or resent
    /// batch is re-acked but never re-applied.
    pub steal_applied: Mutex<HashMap<WorkerId, HashSet<u64>>>,
    /// Replicated label table for labeled graphs (see
    /// [`crate::api::ComputeEnv::label_of`]); `None` when unlabeled.
    pub labels: Option<Arc<Vec<gthinker_graph::ids::Label>>>,
    /// Output sink when `JobConfig::output_dir` is set.
    pub output: Option<Arc<crate::output::OutputSink>>,
    /// Worker-level instrumentation: pull-RTT / responder-drain
    /// histograms and the scheduler/cache event ring.
    pub metrics: WorkerMetrics,
    /// Peer clock-offset estimator (cluster trace stitching).
    pub clock: ClockSync,
    /// Cluster telemetry sink, installed only on the master process of
    /// a multi-process run; inbound `MetricsReport`s and the master's
    /// own periodic snapshots are published into it.
    pub telemetry: OnceLock<Arc<crate::metrics::ClusterTelemetry>>,
    /// Set on every process of a multi-process cluster run: ship a
    /// final metrics report (with the event ring) to the master just
    /// before the final aggregator sync.
    pub remote_report: AtomicBool,
    /// When the last periodic metrics report went out (tick thread
    /// only; a lock keeps `WorkerShared` construction simple).
    pub last_report: Mutex<Option<Instant>>,
}

impl<A: App> WorkerShared<A> {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: WorkerId,
        app: Arc<A>,
        config: JobConfig,
        local: LocalTable,
        cache: VertexCache,
        spill: SpillManager,
        net: Box<dyn NetEndpoint>,
        partitioner: HashPartitioner,
        labels: Option<Arc<Vec<gthinker_graph::ids::Label>>>,
        output: Option<Arc<crate::output::OutputSink>>,
    ) -> Arc<Self> {
        let agg = LocalAgg::new(Arc::new(app.make_aggregator()));
        let compers =
            (0..config.compers_per_worker).map(|_| ComperShared::new(config.task_batch)).collect();
        let batcher = RequestBatcher::new(me, config.num_workers, config.request_batch);
        let metrics = WorkerMetrics::new(config.trace_capacity);
        Arc::new(WorkerShared {
            me,
            app,
            config,
            local,
            cache,
            spill,
            compers,
            batcher,
            net,
            agg,
            partitioner,
            outstanding_pulls: AtomicI64::new(0),
            done: AtomicBool::new(false),
            suspend: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            aborted: AtomicBool::new(false),
            abort_on_failure: AtomicBool::new(false),
            recoveries: AtomicU64::new(0),
            rejoins: AtomicU64::new(0),
            resumed_epoch: AtomicI64::new(-1),
            receiver_stop: AtomicBool::new(false),
            task_mem: AtomicI64::new(0),
            peak_mem: AtomicU64::new(0),
            sched_events: EventCount::new(),
            gc_events: EventCount::new(),
            tick_events: EventCount::new(),
            counters: WorkerCounters::default(),
            failure: Mutex::new(None),
            drained_queues: Mutex::new(Vec::new()),
            steal_outgoing: Mutex::new(HashMap::new()),
            steal_inflight: AtomicU64::new(0),
            steal_seq: AtomicU64::new(0),
            steal_applied: Mutex::new(HashMap::new()),
            labels,
            output,
            metrics,
            clock: ClockSync::new(),
            telemetry: OnceLock::new(),
            remote_report: AtomicBool::new(false),
            last_report: Mutex::new(None),
        })
    }

    /// Estimated offset of this worker's metrics clock from the
    /// master's (see [`ClockSync`]).
    pub fn clock_offset_nanos(&self) -> i64 {
        self.clock.offset_nanos()
    }

    /// True when this worker should stop its threads.
    ///
    /// `Relaxed` loads: both flags are monotone one-shot signals, and
    /// every code path that sets one also calls [`WorkerShared::wake_all`],
    /// whose `SeqCst` epoch bump makes the flag visible to any thread it
    /// wakes; a thread that reads a stale `false` here merely runs one
    /// more (harmless) round before the park/wait path observes the
    /// wakeup.
    pub fn stopping(&self) -> bool {
        self.done.load(Ordering::Relaxed) || self.suspend.load(Ordering::Relaxed)
    }

    /// Wakes every parked thread of this worker. Call after flipping
    /// `done` or `suspend` so shutdown latency is bounded by the wakeup
    /// path, not by park fallbacks or the sync interval.
    pub fn wake_all(&self) {
        self.sched_events.notify_all();
        self.gc_events.notify_all();
        self.tick_events.notify_all();
    }

    /// Estimated remaining load in tasks: spilled batches plus
    /// unspawned vertices plus queued/buffered/pending tasks.
    pub fn remaining_estimate(&self) -> u64 {
        let spilled = self.spill.num_files() as u64 * self.config.task_batch as u64;
        let unspawned = self.local.unspawned() as u64;
        let queued: u64 = self
            .compers
            .iter()
            .map(|c| (c.queue.len() + c.buffer.len() + c.pending.len()) as u64)
            .sum();
        spilled + unspawned + queued
    }

    /// The quiescence predicate used for distributed termination: no
    /// local work of any kind and no pull in flight. Busy flags are set
    /// by compers *before* they check their task sources, so this check
    /// cannot race past a task that is about to start.
    ///
    /// Memory-ordering notes (the weakest orderings the protocol
    /// permits, per site):
    ///
    /// * `outstanding_pulls` is read `Acquire` to pair with the
    ///   `Release` decrement the receiver performs *after* pushing the
    ///   ready task into `B_task`: reading 0 here implies every such
    ///   push is visible to the buffer checks below.
    /// * `busy` is read `SeqCst` — it anchors the protocol. A comper
    ///   stores `busy = true` (`SeqCst`) *before* taking from any
    ///   source, so in the seqcst total order either this check sees
    ///   `busy == true`, or the comper's source reads happen after this
    ///   check's (empty) snapshot.
    /// * The short-circuit order matters: `busy` is read *before* the
    ///   queue length. `SharedTaskQueue::len` is a relaxed mirror, but
    ///   queues only grow while their owner (or a stealing sibling) is
    ///   busy, and observing `busy == false` (a `SeqCst` store by the
    ///   comper after its last queue update) makes all prior relaxed
    ///   stores — including the length mirror — visible.
    /// * `steal_inflight` is read `Acquire` and incremented `SeqCst`
    ///   *before* a steal batch's tasks leave any local source
    ///   (`execute_steal_request`), so tasks under assembly or awaiting
    ///   the thief's ack always count as outstanding work somewhere:
    ///   the victim stays non-quiescent until the ack, and by then the
    ///   thief has durably spilled the batch (it acks only after
    ///   `push_file_bytes`), making its own `spill.is_empty()` false.
    ///   Ownership overlaps; it never gaps.
    pub fn quiescent(&self) -> bool {
        self.outstanding_pulls.load(Ordering::Acquire) == 0
            && self.steal_inflight.load(Ordering::Acquire) == 0
            && self.local.unspawned() == 0
            && self.spill.is_empty()
            && self.batcher.pending() == 0
            && self.compers.iter().all(|c| {
                !c.busy.load(Ordering::SeqCst)
                    && c.queue.is_empty()
                    && c.buffer.is_empty()
                    && c.pending.is_empty()
            })
    }

    /// Records a UDF panic (first one wins).
    pub fn record_failure(&self, payload: Box<dyn std::any::Any + Send>) {
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "application UDF panicked".to_string());
        let mut f = self.failure.lock();
        if f.is_none() {
            *f = Some(msg);
        }
    }

    /// One memory-estimate sample; updates the peak.
    pub fn sample_memory(&self) {
        let est = self.local.heap_bytes() as u64
            + self.cache.heap_bytes() as u64
            + self.task_mem.load(Ordering::Relaxed).max(0) as u64;
        self.peak_mem.fetch_max(est, Ordering::Relaxed);
    }
}

/// One request batch queued from the receiver to a responder.
#[derive(Debug)]
pub(crate) struct RespondJob {
    /// Requesting worker (the response's destination).
    pub from: WorkerId,
    /// Requested vertices.
    pub vertices: Vec<VertexId>,
    /// The request's `sent_nanos`, echoed back for RTT measurement.
    pub req_nanos: u64,
    /// When the receiver dispatched the job (drain-time measurement).
    pub enqueued_nanos: u64,
}

/// Round-robin dispatcher from the receiver to the responder pool
/// (tail-latency scheduler, layer 3). The receiver owns it; dropping it
/// (receiver exit) hangs up every responder channel, which is how the
/// pool shuts down.
pub(crate) struct ResponderRing {
    txs: Vec<Sender<RespondJob>>,
    next: usize,
}

impl ResponderRing {
    pub fn new(txs: Vec<Sender<RespondJob>>) -> Self {
        assert!(!txs.is_empty(), "at least one responder");
        ResponderRing { txs, next: 0 }
    }

    fn dispatch(&mut self, job: RespondJob) {
        self.txs[self.next].send(job).expect("responder outlives the receiver");
        self.next = (self.next + 1) % self.txs.len();
    }
}

/// One responder thread: serves `VertexRequest` batches from `T_local`
/// off the receiver thread, so response installation and request
/// serving overlap instead of serializing behind one thread. Exits when
/// the receiver drops the [`ResponderRing`]. `ridx` is the responder's
/// index in the pool (trace thread ID only).
pub(crate) fn responder_loop<A: App>(
    shared: &Arc<WorkerShared<A>>,
    rx: Receiver<RespondJob>,
    ridx: usize,
) {
    while let Ok(RespondJob { from, vertices, req_nanos, enqueued_nanos }) = rx.recv() {
        let served = vertices.len() as u64;
        let entries = vertices
            .into_iter()
            .map(|v| {
                let adj = shared
                    .local
                    .get(v)
                    .unwrap_or_else(|| panic!("worker {} asked for non-local {v}", shared.me));
                // The clone models the copy onto the wire.
                (v, (*adj).clone())
            })
            .collect();
        shared.net.send(from, Message::VertexResponse { entries, req_nanos });
        let now = now_nanos();
        shared.metrics.responder_drain.record(now.saturating_sub(enqueued_nanos));
        if shared.metrics.ring.enabled() {
            shared.metrics.ring.push(Event {
                ts: enqueued_nanos,
                dur: now.saturating_sub(enqueued_nanos),
                tid: gthinker_metrics::TID_RESPONDER_BASE + ridx as u32,
                arg: served,
                kind: EventKind::Respond,
            });
        }
        shared.counters.responses_served.fetch_add(served, Ordering::Relaxed);
        shared.counters.responder_backlog.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Most messages the receiver applies before issuing its accumulated
/// wakeups. Sized so a burst of small responses amortizes the parks
/// and wakes without letting one batch starve control traffic.
const RECV_BATCH: usize = 64;

/// Wakeups accumulated while applying one received batch: every
/// message is installed first, then each set flag fires **one**
/// `EventCount` notify — a batch of N vertex responses costs one
/// scheduler wakeup, not N.
#[derive(Default)]
struct WakeSet {
    sched: bool,
    gc: bool,
}

impl WakeSet {
    fn flush<A: App>(&mut self, shared: &WorkerShared<A>) {
        if std::mem::take(&mut self.sched) {
            shared.sched_events.notify_all();
        }
        if std::mem::take(&mut self.gc) {
            shared.gc_events.notify_all();
        }
    }
}

/// The receiver thread: dispatches pull requests to the responder pool,
/// installs responses into `T_cache`, wakes pending tasks, executes
/// steal plans, and forwards control-plane messages to the worker main
/// thread. Messages are drained in batches ([`NetEndpoint::recv_batch`])
/// and downstream wakeups flushed once per batch.
pub(crate) fn receiver_loop<A: App>(
    shared: &Arc<WorkerShared<A>>,
    ctrl: Sender<Message>,
    mut responders: ResponderRing,
) {
    let mut batch = Vec::with_capacity(RECV_BATCH);
    let mut wakes = WakeSet::default();
    loop {
        let n = shared.net.recv_batch(Duration::from_millis(1), RECV_BATCH, &mut batch);
        if n == 0 {
            if shared.receiver_stop.load(Ordering::SeqCst) {
                // Drain whatever is still queued, then exit.
                while let Some(msg) = shared.net.try_recv() {
                    handle_message(shared, &ctrl, &mut responders, &mut wakes, msg);
                }
                wakes.flush(shared);
                return;
            }
            continue;
        }
        for msg in batch.drain(..) {
            handle_message(shared, &ctrl, &mut responders, &mut wakes, msg);
        }
        wakes.flush(shared);
    }
}

fn handle_message<A: App>(
    shared: &Arc<WorkerShared<A>>,
    ctrl: &Sender<Message>,
    responders: &mut ResponderRing,
    wakes: &mut WakeSet,
    msg: Message,
) {
    if shared.crashed.load(Ordering::Relaxed) {
        // A dead machine processes nothing; the router also stops
        // delivering, but anything already queued is dropped here.
        return;
    }
    match msg {
        Message::Crash => {
            // Fault-injected kill: stop every thread without the usual
            // shutdown courtesies (no final sync, no checkpoint shard).
            shared.crashed.store(true, Ordering::SeqCst);
            shared.done.store(true, Ordering::SeqCst);
            shared.wake_all();
        }
        Message::VertexRequest { from, vertices, sent_nanos } => {
            let depth = shared.counters.responder_backlog.fetch_add(1, Ordering::Relaxed) + 1;
            shared.counters.responder_peak_backlog.fetch_max(depth, Ordering::Relaxed);
            responders.dispatch(RespondJob {
                from,
                vertices,
                req_nanos: sent_nanos,
                enqueued_nanos: now_nanos(),
            });
        }
        Message::VertexResponse { entries, req_nanos } => {
            // One RTT sample per response batch: send → install start.
            if req_nanos > 0 {
                shared.metrics.pull_rtt.record(now_nanos().saturating_sub(req_nanos));
            }
            let mut made_ready = false;
            for (v, adj) in entries {
                // `None` = no open R-table entry: a duplicate (the wire
                // duplicated the response, or a retry raced the
                // original). OP2 is idempotent — drop it without
                // touching the pull count, which the first copy already
                // settled.
                let Some(waiters) = shared.cache.insert_response(v, adj) else {
                    continue;
                };
                for id in waiters {
                    let comper = &shared.compers[id.comper() as usize];
                    if let Some(task) = comper.pending.notify(id) {
                        // Task accounting moves with the task.
                        comper.buffer.push(task);
                        made_ready = true;
                    }
                }
                // Decrement only after the ready task is visible in
                // B_task, so quiescence can never miss it. `Release`
                // (paired with the `Acquire` load in `quiescent`)
                // orders the buffer push before the count reaching 0;
                // nothing here needs the full seqcst fence the old code
                // paid per entry.
                shared.outstanding_pulls.fetch_sub(1, Ordering::Release);
            }
            // Edge-triggered wakes, batched: a comper parks only with
            // an empty B_task, so a response that completes no task
            // carries no edge it could act on — pull-count decrements
            // alone keep `pending + buffer` constant. Likewise the GC
            // only has work once the inserts leave the cache over its
            // limit (eviction of released entries below the limit is
            // not its job). The flags fire one notify per received
            // batch (`WakeSet::flush`), not one per message.
            if made_ready {
                wakes.sched = true;
            }
            if shared.cache.over_limit() {
                wakes.gc = true;
            }
        }
        Message::StealRequest { victim, thief, max_tasks } => {
            debug_assert_eq!(victim, shared.me, "steal request routed to the wrong worker");
            execute_steal_request(shared, thief, max_tasks);
        }
        Message::StealBatch { victim, seq, bytes } => {
            // Dedup before anything else: the data plane may duplicate
            // the frame, or deliver the victim's resend after the
            // original. Applying a sequence number twice would
            // double-run every task inside.
            let fresh = shared.steal_applied.lock().entry(victim).or_default().insert(seq);
            if fresh {
                // Steal batches cross a trust boundary (another process
                // on the tcp backend), so they travel sealed; a version
                // or CRC mismatch must fail loudly, not deserialize
                // garbage tasks.
                let batch = match frame::open(&bytes) {
                    Ok(payload) => payload.to_vec(),
                    Err(e) => panic!("rejecting steal batch from a mismatched peer: {e}"),
                };
                // Durably append to `L_file` BEFORE acking: from the
                // victim's drain to this ack, some worker always owns
                // the tasks (overlap, never a gap).
                shared.spill.push_file_bytes(batch).expect("spill dir writable");
                if shared.metrics.ring.enabled() {
                    shared.metrics.ring.push(Event {
                        ts: now_nanos(),
                        dur: 0,
                        tid: TID_RECEIVER,
                        arg: steal_flow_key(victim, seq),
                        kind: EventKind::StealRecv,
                    });
                }
                // A new spill file is a refill source every comper
                // checks (wake batched with the rest of this drain).
                wakes.sched = true;
                shared.net.send(WorkerId(0), Message::StealDone);
            }
            // (Re-)ack even for duplicates: the earlier ack may have
            // crossed a resend on the wire, and the victim keeps
            // resending until one lands.
            shared.net.send(victim, Message::StealAck { seq });
        }
        Message::StealAck { seq } => {
            // The thief holds the batch durably; drop the retained
            // copy. A second ack for the same seq finds nothing.
            if shared.steal_outgoing.lock().remove(&seq).is_some() {
                shared.steal_inflight.fetch_sub(1, Ordering::Release);
            }
        }
        Message::AggregatorGlobal { payload } => match gthinker_task::codec::from_bytes(&payload) {
            Ok(global) => shared.agg.set_global(global),
            Err(e) => panic!("corrupt aggregator broadcast: {e}"),
        },
        Message::Terminate => {
            shared.done.store(true, Ordering::SeqCst);
            shared.wake_all();
        }
        Message::Suspend => {
            shared.suspend.store(true, Ordering::SeqCst);
            shared.wake_all();
        }
        Message::ClockPing { worker, nonce } => {
            // Clock-sync request from a peer: stamp it with this
            // process's metrics clock and bounce it straight back off
            // the receiver thread — any queueing here would widen the
            // RTT and loosen the peer's offset estimate.
            shared.net.send(worker, Message::ClockPong { nonce, nanos: now_nanos() });
        }
        Message::ClockPong { nonce, nanos } => {
            shared.clock.on_pong(nonce, nanos);
        }
        Message::Abort { .. } => {
            // A peer process died and the master ordered a fall-back to
            // the last validated checkpoint. Stop cleanly (unlike
            // `Crash`): final control traffic still flows, and the
            // recovery runner re-rendezvouses afterwards.
            shared.aborted.store(true, Ordering::SeqCst);
            shared.done.store(true, Ordering::SeqCst);
            shared.wake_all();
        }
        Message::Resume { .. } => {
            // Rendezvous-phase message; by the time the receiver thread
            // runs, the recovery runner has already consumed the one
            // that mattered. A straggling duplicate is meaningless.
        }
        m @ (Message::Progress { .. }
        | Message::AggregatorSync { .. }
        | Message::MetricsReport { .. }
        | Message::StealExecuted { .. }
        | Message::StealDone
        | Message::SuspendDone { .. }
        | Message::PeerDown { .. }) => {
            // Master-only control traffic: hand to the main thread.
            // (`PeerDown` at a non-master just accumulates unread — the
            // master decides what a dead peer means for the job.)
            let _ = ctrl.send(m);
        }
    }
}

/// How long a victim waits for a [`Message::StealAck`] before
/// resending the retained frame. Reuses the pull-retry deadline: both
/// recover the same class of data-plane loss on the same wire.
fn steal_resend_after(config: &JobConfig) -> Duration {
    config.cache.pull_timeout
}

/// Task count of an encoded `Vec<Task<C>>` payload (u64 LE prefix).
fn batch_task_count(bytes: &[u8]) -> u64 {
    bytes.get(..8).map_or(0, |b| u64::from_le_bytes(b.try_into().expect("8-byte slice")))
}

/// Chrome flow-event id correlating a steal batch's send and receive
/// across processes: victim worker in the high 32 bits, sequence
/// number (truncated) in the low 32.
fn steal_flow_key(victim: WorkerId, seq: u64) -> u64 {
    ((victim.0 as u64) << 32) | (seq & 0xFFFF_FFFF)
}

/// Victim-side execution of a master-brokered steal: seal up to
/// `max_tasks` tasks into one `StealBatch` addressed to `thief`,
/// retaining the framed bytes in the outgoing ledger until the thief
/// acknowledges (see [`OutgoingSteal`]). Sources in priority order:
/// an already-spilled batch file (zero serialization), then the newest
/// half of the largest live comper `Q_task` (the straggler drain the
/// cluster stealing exists for), then fresh tasks spawned from
/// unspawned local vertices (the paper: stolen tasks "could be spawned
/// from their local vertex table").
fn execute_steal_request<A: App>(shared: &Arc<WorkerShared<A>>, thief: WorkerId, max_tasks: u32) {
    // Cover the assembly window: from the moment tasks leave a local
    // source until the sealed batch sits in the ledger, this counter
    // keeps the worker non-quiescent (`WorkerShared::quiescent`).
    shared.steal_inflight.fetch_add(1, Ordering::SeqCst);
    let Some((bytes, count)) = steal_payload(shared, (max_tasks as usize).max(1)) else {
        shared.steal_inflight.fetch_sub(1, Ordering::Release);
        shared.net.send(WorkerId(0), Message::StealExecuted { sent: 0 });
        return;
    };
    let seq = shared.steal_seq.fetch_add(1, Ordering::Relaxed);
    let framed = frame::seal(&bytes);
    shared.counters.remote_steals.fetch_add(1, Ordering::Relaxed);
    shared.counters.remote_stolen_tasks.fetch_add(count, Ordering::Relaxed);
    shared.counters.steal_batch_bytes.fetch_add(framed.len() as u64, Ordering::Relaxed);
    shared.steal_outgoing.lock().insert(
        seq,
        OutgoingSteal {
            thief,
            framed: framed.clone(),
            tasks: count,
            deadline: Instant::now() + steal_resend_after(&shared.config),
        },
    );
    shared.net.send(thief, Message::StealBatch { victim: shared.me, seq, bytes: framed });
    if shared.metrics.ring.enabled() {
        shared.metrics.ring.push(Event {
            ts: now_nanos(),
            dur: 0,
            tid: TID_RECEIVER,
            arg: steal_flow_key(shared.me, seq),
            kind: EventKind::StealSend,
        });
    }
    shared.net.send(WorkerId(0), Message::StealExecuted { sent: 1 });
}

/// Picks the payload for one steal batch: raw spill-format bytes
/// (`Vec<Task>` encoding) plus the task count inside. `None` when the
/// victim has nothing transferable.
fn steal_payload<A: App>(
    shared: &Arc<WorkerShared<A>>,
    max_tasks: usize,
) -> Option<(Vec<u8>, u64)> {
    // (1) An already-spilled batch ships as-is.
    if let Some(bytes) = shared.spill.pop_file_bytes().expect("spill dir readable") {
        let count = batch_task_count(&bytes);
        return Some((bytes, count));
    }
    // (2) Drain the newest half of the largest live Q_task. The tasks
    // were counted into `task_mem` when enqueued; shipping them off
    // the machine releases that estimate.
    let largest = shared
        .compers
        .iter()
        .enumerate()
        .max_by_key(|(_, c)| c.queue.len())
        .filter(|(_, c)| c.queue.len() >= 2)
        .map(|(j, _)| j);
    if let Some(j) = largest {
        if let Some(mut tasks) = shared.compers[j].queue.steal_half(2) {
            if tasks.len() > max_tasks {
                // Keep the newest `max_tasks`; return the rest.
                let keep = tasks.split_off(tasks.len() - max_tasks);
                shared.compers[j].queue.push_batch(tasks);
                tasks = keep;
            }
            for t in &tasks {
                shared.task_mem.fetch_sub(task_cost(t), Ordering::Relaxed);
            }
            let count = tasks.len() as u64;
            return Some((to_bytes(&tasks), count));
        }
    }
    // (3) Spawn a batch directly for the thief.
    let verts: Vec<VertexId> = shared.local.claim_spawn_batch(shared.config.task_batch).to_vec();
    if verts.is_empty() {
        return None;
    }
    let batch: Vec<_> = verts
        .into_iter()
        .map(|v| {
            let adj = shared.local.get(v).expect("claimed vertex is local");
            (v, adj, shared.local.label(v))
        })
        .collect();
    let mut env = SpawnEnv::<A>::new(&shared.agg, None);
    if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        shared.app.task_spawn_batch(&batch, &mut env)
    })) {
        shared.record_failure(payload);
        shared.done.store(true, std::sync::atomic::Ordering::SeqCst);
        shared.wake_all();
        return None;
    }
    let tasks: Vec<Task<A::Context>> = env.take_tasks();
    if tasks.is_empty() {
        return None; // all pruned at spawn
    }
    let count = tasks.len() as u64;
    Some((to_bytes(&tasks), count))
}

/// The GC thread: runs lazy eviction passes until the worker stops.
/// Event-driven: parks on `gc_events` whenever a pass evicts nothing
/// (the cache is under its limit), and is woken by the receiver after
/// response installs grow the cache, or by `wake_all` at shutdown.
pub(crate) fn gc_loop<A: App>(shared: &Arc<WorkerShared<A>>) {
    let mut handle = shared.cache.counter_handle();
    loop {
        // Listen before the stop check and the pass, so a wake between
        // "nothing evicted" and the wait below is never lost.
        let key = shared.gc_events.listen();
        if shared.stopping() {
            break;
        }
        let trace = shared.metrics.ring.enabled();
        let pass_start = if trace { now_nanos() } else { 0 };
        let evicted = shared.cache.gc_pass(&mut handle);
        if evicted > 0 {
            if trace {
                shared.metrics.ring.push(Event {
                    ts: pass_start,
                    dur: now_nanos().saturating_sub(pass_start),
                    tid: TID_GC,
                    arg: evicted as u64,
                    kind: EventKind::GcPass,
                });
            }
            // Evictions may reopen the pop() gate (`over_limit`) that
            // idle compers are parked behind.
            shared.sched_events.notify_all();
        } else {
            shared.gc_events.wait(key, Duration::from_millis(5));
        }
    }
    handle.flush();
}

/// Periodic duties of every worker's main thread (master or not):
/// report progress, ship the aggregator partial, flush request batches
/// and sample memory. Returns the quiescence verdict this tick
/// reported, so the caller can trace quiescence edges.
pub(crate) fn worker_tick<A: App>(shared: &Arc<WorkerShared<A>>, master: WorkerId) -> bool {
    shared.batcher.flush_all(&*shared.net);
    // Loss tolerance: re-request pulls whose R-table deadline expired
    // (the wire may have dropped the request or the response). The scan
    // is a single atomic load when nothing is in flight, and each lost
    // vertex backs off exponentially inside the cache, so a healthy
    // wire pays nothing and a lossy one converges instead of storming.
    let timed_out = shared.cache.collect_timed_out(std::time::Instant::now());
    if !timed_out.is_empty() {
        shared.counters.pull_retries.fetch_add(timed_out.len() as u64, Ordering::Relaxed);
        for v in timed_out {
            let owner = shared.partitioner.owner(v);
            shared.batcher.add(&*shared.net, owner, v);
        }
        shared.batcher.flush_all(&*shared.net);
    }
    // Steal-batch loss tolerance: resend retained frames whose ack
    // deadline passed. Resends are byte-identical and the thief dedups
    // by sequence number, so redelivery is idempotent; collect under
    // the lock, send outside it (a TCP send may block).
    let resends: Vec<(WorkerId, u64, Vec<u8>)> = {
        let mut outgoing = shared.steal_outgoing.lock();
        if outgoing.is_empty() {
            Vec::new()
        } else {
            let now = Instant::now();
            let backoff = steal_resend_after(&shared.config);
            outgoing
                .iter_mut()
                .filter(|(_, o)| now >= o.deadline)
                .map(|(seq, o)| {
                    o.deadline = now + backoff;
                    (o.thief, *seq, o.framed.clone())
                })
                .collect()
        }
    };
    for (thief, seq, framed) in resends {
        shared.counters.steal_batch_bytes.fetch_add(framed.len() as u64, Ordering::Relaxed);
        shared.net.send(thief, Message::StealBatch { victim: shared.me, seq, bytes: framed });
    }
    shared.sample_memory();
    let partial = shared.agg.take_partial();
    shared.net.send(
        master,
        Message::AggregatorSync { worker: shared.me, payload: to_bytes(&partial), is_final: false },
    );
    let idle = shared.quiescent();
    // Idle compers (parked with nothing reachable) feed the master's
    // thief selection; the in-flight count gates its suspend broadcast.
    let idle_compers = shared
        .compers
        .iter()
        .filter(|c| !c.busy.load(Ordering::Relaxed) && c.queue.is_empty() && c.buffer.is_empty())
        .count() as u16;
    shared.net.send(
        master,
        Message::Progress {
            worker: shared.me,
            remaining: shared.remaining_estimate(),
            idle,
            idle_compers,
            steal_inflight: shared.steal_inflight.load(Ordering::Relaxed).min(u32::MAX as u64)
                as u32,
        },
    );
    // Clock-sync pings: non-master workers take a few RTT samples early
    // in the run so end-of-job trace stitching can map their event
    // timestamps onto the master's clock.
    if shared.config.num_workers > 1 && shared.me != master {
        if let Some(nonce) = shared.clock.begin_ping() {
            shared.net.send(master, Message::ClockPing { worker: shared.me, nonce });
        }
    }
    // Live metrics streaming: ship a compact cumulative snapshot every
    // `report_interval` so the master's cluster view stays fresh.
    if let Some(interval) = shared.config.report_interval {
        let due = {
            let mut last = shared.last_report.lock();
            match *last {
                Some(t) if t.elapsed() < interval => false,
                _ => {
                    *last = Some(Instant::now());
                    true
                }
            }
        };
        if due {
            crate::metrics::send_report(shared, master, false);
        }
    }
    idle
}
