//! The comper (mining thread) loop — "Algorithm of a Comper" in §V-B.
//!
//! Every round a comper runs:
//!
//! * **push()** — if `B_task` has a ready task, compute one (or more)
//!   iterations of it. Runs every round so tasks keep flowing (and keep
//!   releasing cache locks) even when `pop()` is blocked.
//! * **pop()** — only if the cache is not over its overflow limit and
//!   `|T_task| + |B_task| ≤ D`: refill `Q_task` if it dropped to `≤ C`
//!   (spilled files first, then fresh spawns), pop a task and process
//!   it. Tasks whose pulled vertices are all locally available compute
//!   immediately; otherwise they park in `T_task`.
//!
//! A comper that makes no progress in a round flushes its worker's
//! request batches (so parked tasks' pulls actually go out) and naps
//! briefly.

use crate::api::{App, ComputeEnv, SpawnEnv};
use crate::worker::{task_cost, WorkerShared};
use gthinker_graph::adj::SharedAdj;
use gthinker_graph::ids::{TaskId, VertexId};
use gthinker_store::cache::RequestOutcome;
use gthinker_store::counter::CounterHandle;
use gthinker_task::queue::TaskQueue;
use gthinker_task::task::{Frontier, Task};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Runs one comper until the worker stops; `idx` is the comper's index
/// within the worker (also the comper half of its task IDs).
pub(crate) fn comper_loop<A: App>(shared: Arc<WorkerShared<A>>, idx: usize) {
    let mut ctx = ComperCtx {
        queue: TaskQueue::new(shared.config.task_batch),
        counter: shared.cache.counter_handle(),
        seq: 0,
        idx,
    };
    let me = || &shared.compers[idx];
    loop {
        if shared.stopping() {
            break;
        }
        // Quick emptiness hint. If every source is empty the comper
        // stays provably idle this round: a task can only appear via
        // the receiver (making B_task non-empty → worker non-quiescent)
        // or via another comper spilling (L_file non-empty →
        // non-quiescent), so skipping the round cannot race
        // termination.
        let may_have_work = !me().buffer.is_empty()
            || !ctx.queue.is_empty()
            || !shared.spill.is_empty()
            || shared.local.unspawned() > 0;
        if !may_have_work {
            me().busy.store(false, Ordering::SeqCst);
            shared.batcher.flush_all(&shared.net);
            let nap = Instant::now();
            std::thread::sleep(Duration::from_micros(100));
            shared
                .counters
                .idle_nanos
                .fetch_add(nap.elapsed().as_nanos() as u64, Ordering::Relaxed);
            continue;
        }
        // Declare busy *before* actually taking from the sources, so
        // the quiescence check cannot slip between "sources empty" and
        // "task started".
        me().busy.store(true, Ordering::SeqCst);
        let mut progressed = false;

        // push(): consume one ready task.
        if let Some(task) = me().buffer.pop() {
            shared.task_mem.fetch_sub(task_cost(&task), Ordering::Relaxed);
            progressed = true;
            drive_task(&shared, &mut ctx, task, true);
        }

        // pop(): gated on cache capacity and the pending limit D.
        let gate_open = !shared.cache.over_limit()
            && me().pending.len() + me().buffer.len() <= shared.config.pending_limit();
        if gate_open {
            if ctx.queue.needs_refill() {
                refill(&shared, &mut ctx);
            }
            if let Some(task) = ctx.queue.pop() {
                shared.task_mem.fetch_sub(task_cost(&task), Ordering::Relaxed);
                progressed = true;
                drive_task(&shared, &mut ctx, task, false);
            }
        }
        me().queue_len.store(ctx.queue.len(), Ordering::SeqCst);

        if !progressed {
            me().busy.store(false, Ordering::SeqCst);
            // Push out partial request batches so remote pulls that
            // tasks are parked on actually leave the machine.
            shared.batcher.flush_all(&shared.net);
            let nap = Instant::now();
            std::thread::sleep(Duration::from_micros(100));
            shared
                .counters
                .idle_nanos
                .fetch_add(nap.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
    me().busy.store(false, Ordering::SeqCst);
    ctx.counter.flush();
    // On suspension, park residual queue contents for the checkpoint.
    if shared.suspend.load(Ordering::SeqCst) {
        let rest = ctx.queue.drain_all();
        for t in &rest {
            shared.task_mem.fetch_sub(task_cost(t), Ordering::Relaxed);
        }
        shared.drained_queues.lock().extend(rest);
    }
    me().queue_len.store(ctx.queue.len(), Ordering::SeqCst);
}

/// Comper-local state threaded through the processing functions.
struct ComperCtx<C> {
    queue: TaskQueue<C>,
    counter: CounterHandle,
    seq: u64,
    idx: usize,
}

/// Drives a task through as many iterations as possible.
///
/// `ready` marks a task coming from `B_task`: its pull set is already
/// satisfied (every pulled vertex is local or cache-locked by this
/// task), so the first frontier is assembled without new requests.
/// Afterwards (and for non-ready tasks from the start) each iteration's
/// pulls go through the cache; the task parks in `T_task` when
/// something is missing.
fn drive_task<A: App>(
    shared: &Arc<WorkerShared<A>>,
    ctx: &mut ComperCtx<A::Context>,
    mut task: Task<A::Context>,
    ready: bool,
) {
    let mut first_ready = ready;
    loop {
        let pulls = task.take_pulls();
        let frontier = if pulls.is_empty() {
            Frontier::default()
        } else if first_ready {
            // All pulled vertices are guaranteed available.
            let entries = pulls.iter().map(|&v| (v, resolve_available(shared, v))).collect();
            Frontier::new(entries)
        } else {
            // Resolve through T_local / T_cache; may park the task.
            let id = TaskId::new(ctx.idx as u16, ctx.seq);
            ctx.seq += 1;
            let mut entries: Vec<(VertexId, SharedAdj)> = Vec::with_capacity(pulls.len());
            let mut missing = 0u32;
            for &v in &pulls {
                if let Some(adj) = shared.local.get(v) {
                    entries.push((v, adj));
                    continue;
                }
                match shared.cache.request(v, id, &mut ctx.counter) {
                    RequestOutcome::Hit(adj) => entries.push((v, adj)),
                    RequestOutcome::MustRequest => {
                        missing += 1;
                        // Count before the request can possibly leave,
                        // so quiescence never under-counts.
                        shared.outstanding_pulls.fetch_add(1, Ordering::SeqCst);
                        let owner = shared.partitioner.owner(v);
                        shared.batcher.add(&shared.net, owner, v);
                    }
                    RequestOutcome::AlreadyRequested => missing += 1,
                }
            }
            if missing > 0 {
                // Park: remember P(t) so the ready path can rebuild the
                // frontier. Hits stay locked while parked. Responses
                // may already have raced ahead of this insert — in that
                // case the table hands the task straight back as ready.
                let req = pulls.len() as u32;
                task.set_pulls(pulls);
                shared.task_mem.fetch_add(task_cost(&task), Ordering::Relaxed);
                if let Some(ready) =
                    shared.compers[ctx.idx].pending.insert(id, task, req, req - missing)
                {
                    shared.compers[ctx.idx].buffer.push(ready);
                }
                return;
            }
            Frontier::new(entries)
        };
        first_ready = false;

        let proceed = compute_once(shared, ctx, &mut task, &frontier);

        // Release every remote vertex of this iteration (paper: a task
        // always releases its requested non-local vertices after each
        // iteration so GC can evict them in time).
        for v in frontier.vertex_ids() {
            if !shared.local.contains(v) {
                shared.cache.release(v);
            }
        }
        if !proceed {
            shared.counters.tasks_finished.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
}

/// Resolves a vertex known to be available (local or cache-locked).
fn resolve_available<A: App>(shared: &Arc<WorkerShared<A>>, v: VertexId) -> SharedAdj {
    shared
        .local
        .get(v)
        .or_else(|| shared.cache.get_locked(v))
        .unwrap_or_else(|| panic!("ready task's vertex {v} vanished from the cache"))
}

/// Runs one `compute()` iteration and integrates its side effects
/// (decomposed tasks, statistics).
fn compute_once<A: App>(
    shared: &Arc<WorkerShared<A>>,
    ctx: &mut ComperCtx<A::Context>,
    task: &mut Task<A::Context>,
    frontier: &Frontier,
) -> bool {
    let mut env =
        ComputeEnv::<A>::new(&shared.agg, shared.labels.as_ref(), shared.output.as_deref());
    let start = crate::worker::thread_cpu_nanos();
    // A panicking UDF must not strand the job (the worker would never
    // reach quiescence): record it, abort the job, finish the task.
    let proceed = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        shared.app.compute(task, frontier, &mut env)
    })) {
        Ok(proceed) => proceed,
        Err(payload) => {
            shared.record_failure(payload);
            shared.done.store(true, Ordering::SeqCst);
            false
        }
    };
    shared
        .counters
        .compute_nanos
        .fetch_add(crate::worker::thread_cpu_nanos().saturating_sub(start), Ordering::Relaxed);
    shared.counters.compute_calls.fetch_add(1, Ordering::Relaxed);
    for t in env.take_tasks() {
        enqueue(shared, ctx, t);
    }
    proceed
}

/// Adds a task to this comper's `Q_task`, spilling an overflow batch to
/// disk if needed.
fn enqueue<A: App>(
    shared: &Arc<WorkerShared<A>>,
    ctx: &mut ComperCtx<A::Context>,
    task: Task<A::Context>,
) {
    shared.task_mem.fetch_add(task_cost(&task), Ordering::Relaxed);
    if let Some(batch) = ctx.queue.push(task) {
        for t in &batch {
            shared.task_mem.fetch_sub(task_cost(t), Ordering::Relaxed);
        }
        shared.spill.spill(&batch).expect("spill directory writable");
    }
    shared.compers[ctx.idx].queue_len.store(ctx.queue.len(), Ordering::SeqCst);
}

/// Refills `Q_task` (§V-B priority): (1) a spilled batch file if one
/// exists, else (2) spawn fresh tasks from unspawned vertices in
/// `T_local`. (Ready tasks — the paper's source 2 — are consumed
/// directly from `B_task` by the push() phase each round, which keeps
/// the lock discipline simple: tasks inside `Q_task` or spill files
/// never hold cache locks.)
fn refill<A: App>(shared: &Arc<WorkerShared<A>>, ctx: &mut ComperCtx<A::Context>) {
    if let Ok(Some(batch)) = shared.spill.refill::<A::Context>() {
        for t in &batch {
            shared.task_mem.fetch_add(task_cost(t), Ordering::Relaxed);
        }
        ctx.queue.push_batch(batch);
        return;
    }
    let want = ctx.queue.refill_amount().max(1);
    let verts: Vec<VertexId> = shared.local.claim_spawn_batch(want).to_vec();
    if verts.is_empty() {
        return;
    }
    let batch: Vec<_> = verts
        .into_iter()
        .map(|v| {
            let adj = shared.local.get(v).expect("claimed vertex is local");
            (v, adj, shared.local.label(v))
        })
        .collect();
    let mut env = SpawnEnv::<A>::new(&shared.agg, None);
    if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        shared.app.task_spawn_batch(&batch, &mut env)
    })) {
        shared.record_failure(payload);
        shared.done.store(true, Ordering::SeqCst);
        return;
    }
    for t in env.take_tasks() {
        enqueue(shared, ctx, t);
    }
}
