//! The comper (mining thread) loop — "Algorithm of a Comper" in §V-B.
//!
//! Every round a comper runs:
//!
//! * **push()** — if `B_task` has a ready task, compute one (or more)
//!   iterations of it. Runs every round so tasks keep flowing (and keep
//!   releasing cache locks) even when `pop()` is blocked.
//! * **pop()** — only if the cache is not over its overflow limit and
//!   `|T_task| + |B_task| ≤ D`: refill `Q_task` if it dropped to `≤ C`
//!   (spilled files first, then stealing from the largest sibling
//!   queue, then fresh spawns), pop a task and process it. Tasks whose
//!   pulled vertices are all locally available compute immediately;
//!   otherwise they park in `T_task`.
//!
//! A comper that makes no progress in a round flushes its worker's
//! request batches (so parked tasks' pulls actually go out) and parks
//! on the worker's scheduler event count until new work is published
//! (see `DESIGN.md` §"Intra-worker scheduling & wakeup protocol").

use crate::api::{App, ComputeEnv, SpawnEnv};
use crate::worker::{task_cost, WorkerShared};
use gthinker_graph::adj::SharedAdj;
use gthinker_graph::ids::{TaskId, VertexId};
use gthinker_metrics::{now_nanos, Event, EventKind};
use gthinker_store::cache::RequestOutcome;
use gthinker_store::counter::CounterHandle;
use gthinker_task::task::{Frontier, Task};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Safety-net timeout for a parked comper. Every work source has a
/// matching notify, so in a correct schedule parks end with an event;
/// the fallback only bounds the damage of a missed-notify bug.
const PARK_FALLBACK: Duration = Duration::from_millis(5);

/// Smallest sibling queue worth stealing from. Below this the transfer
/// costs more than letting the owner drain the queue, and halving
/// single tasks back and forth between idle compers is pure churn.
/// `stealable_sibling` (the park predicate) and `try_steal` must agree
/// on this threshold, and `enqueue` must notify when a queue crosses
/// it — together those three keep "parked" equivalent to "no reachable
/// work".
const STEAL_MIN: usize = 4;

/// Floor on the period (in queued tasks) of the redundant safety-net
/// notify in `enqueue`, so configs with a tiny task batch `C` don't
/// notify on every other push.
const PERIODIC_NOTIFY: usize = 32;

/// Runs one comper until the worker stops; `idx` is the comper's index
/// within the worker (also the comper half of its task IDs).
pub(crate) fn comper_loop<A: App>(shared: Arc<WorkerShared<A>>, idx: usize) {
    let mut ctx = ComperCtx { counter: shared.cache.counter_handle(), seq: 0, idx };
    let me = || &shared.compers[idx];
    loop {
        if shared.stopping() {
            break;
        }
        // Take the park key *before* checking sources: any work
        // published after this point bumps the event epoch, so the
        // wait at the bottom of an empty round returns immediately
        // instead of losing the wakeup.
        let key = shared.sched_events.listen();
        // Quick emptiness hint. If every source is empty the comper
        // stays provably idle this round: a task can only appear via
        // the receiver (making B_task non-empty → worker non-quiescent),
        // via another comper spilling (L_file non-empty → non-quiescent)
        // or via a sibling queue growing stealable (owner busy →
        // non-quiescent), so skipping the round cannot race termination.
        let may_have_work = !me().buffer.is_empty()
            || !me().queue.is_empty()
            || !shared.spill.is_empty()
            || shared.local.unspawned() > 0
            || stealable_sibling(&shared, idx);
        if !may_have_work {
            me().busy.store(false, Ordering::SeqCst);
            shared.batcher.flush_all(&*shared.net);
            park(&shared, idx, key);
            continue;
        }
        // Declare busy *before* actually taking from the sources, so
        // the quiescence check cannot slip between "sources empty" and
        // "task started". Stays `SeqCst`: the store must be ordered
        // before the subsequent source reads (a StoreLoad edge only
        // seqcst provides) for the termination argument to hold.
        me().busy.store(true, Ordering::SeqCst);
        let mut progressed = false;

        // push(): consume one ready task.
        if let Some(task) = me().buffer.pop() {
            shared.task_mem.fetch_sub(task_cost(&task), Ordering::Relaxed);
            progressed = true;
            drive_spanned(&shared, &mut ctx, task, true);
        }

        // pop(): gated on cache capacity and the pending limit D.
        let gate_open = !shared.cache.over_limit()
            && me().pending.len() + me().buffer.len() <= shared.config.pending_limit();
        if gate_open {
            if me().queue.needs_refill() {
                // Consuming a source (a spill file, a sibling's tasks,
                // or a claim on unspawned vertices) is progress even
                // when it yields no runnable task — apps may spawn
                // nothing for pruned vertices, and parking on such a
                // round would throttle spawning to one batch per
                // fallback period.
                progressed |= refill(&shared, &mut ctx);
            }
            if let Some(task) = me().queue.pop() {
                shared.task_mem.fetch_sub(task_cost(&task), Ordering::Relaxed);
                progressed = true;
                drive_spanned(&shared, &mut ctx, task, false);
            }
        }

        if !progressed {
            me().busy.store(false, Ordering::SeqCst);
            // Push out partial request batches so remote pulls that
            // tasks are parked on actually leave the machine.
            shared.batcher.flush_all(&*shared.net);
            // The round's sources were non-empty but unusable (e.g. the
            // pop gate is closed, or a steal raced): park on the same
            // key — GC evictions, response arrivals and sibling
            // enqueues all notify.
            park(&shared, idx, key);
        }
    }
    me().busy.store(false, Ordering::SeqCst);
    ctx.counter.flush();
    // On suspension, park residual queue contents for the checkpoint.
    if shared.suspend.load(Ordering::SeqCst) {
        let rest = me().queue.drain_all();
        for t in &rest {
            shared.task_mem.fetch_sub(task_cost(t), Ordering::Relaxed);
        }
        shared.drained_queues.lock().extend(rest);
    }
}

/// Parks the calling comper until new work is published (or the
/// fallback elapses), maintaining the idle/park/wakeup counters, the
/// park-duration histogram and (when tracing) a `Park` span.
fn park<A: App>(shared: &Arc<WorkerShared<A>>, idx: usize, key: u64) {
    let start = Instant::now();
    let trace = shared.metrics.ring.enabled();
    let ts = if trace { now_nanos() } else { 0 };
    shared.counters.parks.fetch_add(1, Ordering::Relaxed);
    if shared.sched_events.wait(key, PARK_FALLBACK) {
        shared.counters.wakeups.fetch_add(1, Ordering::Relaxed);
    }
    let dur = start.elapsed().as_nanos() as u64;
    shared.counters.idle_nanos.fetch_add(dur, Ordering::Relaxed);
    shared.compers[idx].hists.park.record(dur);
    if trace {
        shared.metrics.ring.push(Event { ts, dur, tid: idx as u32, arg: 0, kind: EventKind::Park });
    }
}

/// True when some sibling's queue is worth visiting for a steal. Part
/// of the park predicate: a comper never parks while a sibling holds a
/// stealable queue, which is what makes "notify on crossing the
/// stealable threshold" a sufficient wakeup rule for enqueues.
fn stealable_sibling<A: App>(shared: &Arc<WorkerShared<A>>, idx: usize) -> bool {
    shared.config.intra_steal
        && shared.compers.iter().enumerate().any(|(j, c)| j != idx && c.queue.len() >= STEAL_MIN)
}

/// Comper-local state threaded through the processing functions. The
/// task queue itself lives in `ComperShared` so siblings can steal
/// from it.
struct ComperCtx {
    counter: CounterHandle,
    seq: u64,
    idx: usize,
}

/// [`drive_task`] wrapped in a `Compute` trace span covering the whole
/// on-CPU streak (one or more iterations until the task finishes or
/// parks on missing pulls). The span is wall-clock on the shared
/// metrics timeline so streaks from all compers line up in one trace.
fn drive_spanned<A: App>(
    shared: &Arc<WorkerShared<A>>,
    ctx: &mut ComperCtx,
    task: Task<A::Context>,
    ready: bool,
) {
    let trace = shared.metrics.ring.enabled();
    let ts = if trace { now_nanos() } else { 0 };
    drive_task(shared, ctx, task, ready);
    if trace {
        shared.metrics.ring.push(Event {
            ts,
            dur: now_nanos().saturating_sub(ts),
            tid: ctx.idx as u32,
            arg: 0,
            kind: EventKind::Compute,
        });
    }
}

/// Drives a task through as many iterations as possible.
///
/// `ready` marks a task coming from `B_task`: its pull set is already
/// satisfied (every pulled vertex is local or cache-locked by this
/// task), so the first frontier is assembled without new requests.
/// Afterwards (and for non-ready tasks from the start) each iteration's
/// pulls go through the cache; the task parks in `T_task` when
/// something is missing.
fn drive_task<A: App>(
    shared: &Arc<WorkerShared<A>>,
    ctx: &mut ComperCtx,
    mut task: Task<A::Context>,
    ready: bool,
) {
    let mut first_ready = ready;
    let mut steps: u64 = 0;
    loop {
        let pulls = task.take_pulls();
        let frontier = if pulls.is_empty() {
            Frontier::default()
        } else if first_ready {
            // All pulled vertices are guaranteed available.
            let entries = pulls.iter().map(|&v| (v, resolve_available(shared, v))).collect();
            Frontier::new(entries)
        } else {
            // Resolve through T_local / T_cache; may park the task.
            let id = TaskId::new(ctx.idx as u16, ctx.seq);
            ctx.seq += 1;
            let mut entries: Vec<(VertexId, SharedAdj)> = Vec::with_capacity(pulls.len());
            let mut missing = 0u32;
            for &v in &pulls {
                if let Some(adj) = shared.local.get(v) {
                    entries.push((v, adj));
                    continue;
                }
                match shared.cache.request(v, id, &mut ctx.counter) {
                    RequestOutcome::Hit(adj) => entries.push((v, adj)),
                    RequestOutcome::MustRequest => {
                        missing += 1;
                        // Count before the request can possibly leave,
                        // so quiescence never under-counts. Stays
                        // `SeqCst`: this comper's `busy = true` store
                        // must be globally ordered before the
                        // increment, so a quiescence check that misses
                        // the increment necessarily sees the busy flag
                        // (see `WorkerShared::quiescent`).
                        shared.outstanding_pulls.fetch_add(1, Ordering::SeqCst);
                        let owner = shared.partitioner.owner(v);
                        shared.batcher.add(&*shared.net, owner, v);
                    }
                    RequestOutcome::AlreadyRequested => missing += 1,
                }
            }
            if missing > 0 {
                // Park: remember P(t) so the ready path can rebuild the
                // frontier. Hits stay locked while parked. Responses
                // may already have raced ahead of this insert — in that
                // case the table hands the task straight back as ready.
                let req = pulls.len() as u32;
                task.set_pulls(pulls);
                shared.task_mem.fetch_add(task_cost(&task), Ordering::Relaxed);
                if let Some(ready) =
                    shared.compers[ctx.idx].pending.insert(id, task, req, req - missing)
                {
                    shared.compers[ctx.idx].buffer.push(ready);
                }
                return;
            }
            Frontier::new(entries)
        };
        first_ready = false;

        let proceed = compute_once(shared, ctx, &mut task, &frontier);

        // Release every remote vertex of this iteration (paper: a task
        // always releases its requested non-local vertices after each
        // iteration so GC can evict them in time).
        for v in frontier.vertex_ids() {
            if !shared.local.contains(v) {
                shared.cache.release(v);
            }
        }
        if !proceed {
            shared.counters.tasks_finished.fetch_add(1, Ordering::Relaxed);
            // End-to-end latency: spawn → finish, including every pull
            // wait and queue/spill residence in between.
            shared.compers[ctx.idx].hists.e2e.record(now_nanos().saturating_sub(task.born_nanos));
            return;
        }
        // Straggler splitting: a task that keeps asking to proceed past
        // the compute budget yields its on-CPU streak — the remaining
        // subtree goes back through `Q_task` (where siblings or a
        // remote thief can take it) instead of monopolizing this
        // comper. Pulls the UDF just issued stay attached to the task
        // and resolve through the normal non-ready path when it is next
        // popped, so the yield is invisible to the UDF.
        steps += 1;
        if shared.config.compute_budget.is_some_and(|b| steps >= b) {
            shared.counters.yields.fetch_add(1, Ordering::Relaxed);
            shared.counters.split_tasks.fetch_add(1, Ordering::Relaxed);
            enqueue(shared, ctx, task);
            return;
        }
    }
}

/// Resolves a vertex known to be available (local or cache-locked).
fn resolve_available<A: App>(shared: &Arc<WorkerShared<A>>, v: VertexId) -> SharedAdj {
    shared
        .local
        .get(v)
        .or_else(|| shared.cache.get_locked(v))
        .unwrap_or_else(|| panic!("ready task's vertex {v} vanished from the cache"))
}

/// Runs one `compute()` iteration and integrates its side effects
/// (decomposed tasks, statistics).
fn compute_once<A: App>(
    shared: &Arc<WorkerShared<A>>,
    ctx: &mut ComperCtx,
    task: &mut Task<A::Context>,
    frontier: &Frontier,
) -> bool {
    let mut env = ComputeEnv::<A>::new(
        &shared.agg,
        shared.labels.as_ref(),
        shared.output.as_deref(),
        shared.config.compute_budget,
    );
    let start = crate::worker::thread_cpu_nanos();
    // A panicking UDF must not strand the job (the worker would never
    // reach quiescence): record it, abort the job, finish the task.
    let proceed = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        shared.app.compute(task, frontier, &mut env)
    })) {
        Ok(proceed) => proceed,
        Err(payload) => {
            shared.record_failure(payload);
            shared.done.store(true, Ordering::SeqCst);
            shared.wake_all();
            false
        }
    };
    let spent = crate::worker::thread_cpu_nanos().saturating_sub(start);
    shared.counters.compute_nanos.fetch_add(spent, Ordering::Relaxed);
    shared.counters.compute_calls.fetch_add(1, Ordering::Relaxed);
    shared.compers[ctx.idx].hists.compute.record(spent);
    let splits = env.take_splits();
    if splits > 0 {
        shared.counters.yields.fetch_add(1, Ordering::Relaxed);
        shared.counters.split_tasks.fetch_add(splits, Ordering::Relaxed);
    }
    for t in env.take_tasks() {
        enqueue(shared, ctx, t);
    }
    proceed
}

/// Adds a task to this comper's `Q_task`, spilling an overflow batch to
/// disk if needed, and waking parked siblings when the push creates
/// work they can reach.
fn enqueue<A: App>(shared: &Arc<WorkerShared<A>>, ctx: &mut ComperCtx, task: Task<A::Context>) {
    shared.task_mem.fetch_add(task_cost(&task), Ordering::Relaxed);
    let (batch, new_len) = shared.compers[ctx.idx].queue.push(task);
    if let Some(batch) = batch {
        for t in &batch {
            shared.task_mem.fetch_sub(task_cost(t), Ordering::Relaxed);
        }
        // Notify only on the pool's empty → non-empty edge: compers
        // never park while a spill file exists (`may_have_work` checks
        // `spill.is_empty()`), so parked siblings only need the edge,
        // and awake ones find further files through `refill`. Spilling
        // on every push — the tiny-`C` regime — would otherwise wake
        // the whole worker each time. The unsynchronized read can
        // over-notify under a concurrent refill, which is harmless.
        let was_empty = shared.spill.is_empty();
        shared.spill.spill(&batch).expect("spill directory writable");
        if shared.metrics.ring.enabled() {
            shared.metrics.ring.push(Event {
                ts: now_nanos(),
                dur: 0,
                tid: ctx.idx as u32,
                arg: batch.len() as u64,
                kind: EventKind::Spill,
            });
        }
        if was_empty {
            shared.sched_events.notify_all();
        }
    } else if new_len == STEAL_MIN
        || new_len % shared.compers[ctx.idx].queue.batch().max(PERIODIC_NOTIFY) == 0
    {
        // Crossing the stealable threshold is the edge parked siblings
        // need: they only park while *no* queue holds ≥ `STEAL_MIN`
        // tasks (see `stealable_sibling`), so later growth needs no
        // wakeup. Notifying again periodically is a cheap safety net
        // for steal races; the period is floored so tiny `C` configs
        // do not turn every other push into a thundering herd.
        shared.sched_events.notify_all();
    }
}

/// Refills `Q_task` (§V-B priority, extended by the tail-latency
/// scheduler): (1) a spilled batch file if one exists, else (2) steal
/// the newest half of the largest sibling queue, else (3) spawn fresh
/// tasks from unspawned vertices in `T_local`. (Ready tasks — the
/// paper's source 2 — are consumed directly from `B_task` by the push()
/// phase each round, which keeps the lock discipline simple: tasks
/// inside `Q_task` or spill files never hold cache locks.)
///
/// Returns `true` when a source was consumed — a file loaded, tasks
/// stolen, or spawn vertices claimed — even if no task reached the
/// queue (a claimed vertex may legitimately spawn nothing).
fn refill<A: App>(shared: &Arc<WorkerShared<A>>, ctx: &mut ComperCtx) -> bool {
    if let Ok(Some(batch)) = shared.spill.refill::<A::Context>() {
        for t in &batch {
            shared.task_mem.fetch_add(task_cost(t), Ordering::Relaxed);
        }
        if shared.metrics.ring.enabled() {
            shared.metrics.ring.push(Event {
                ts: now_nanos(),
                dur: 0,
                tid: ctx.idx as u32,
                arg: batch.len() as u64,
                kind: EventKind::Refill,
            });
        }
        shared.compers[ctx.idx].queue.push_batch(batch);
        return true;
    }
    if shared.config.intra_steal && try_steal(shared, ctx) {
        return true;
    }
    let want = shared.compers[ctx.idx].queue.refill_amount().max(1);
    let verts: Vec<VertexId> = shared.local.claim_spawn_batch(want).to_vec();
    if verts.is_empty() {
        return false;
    }
    let batch: Vec<_> = verts
        .into_iter()
        .map(|v| {
            let adj = shared.local.get(v).expect("claimed vertex is local");
            (v, adj, shared.local.label(v))
        })
        .collect();
    let mut env = SpawnEnv::<A>::new(&shared.agg, None);
    if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        shared.app.task_spawn_batch(&batch, &mut env)
    })) {
        shared.record_failure(payload);
        shared.done.store(true, Ordering::SeqCst);
        shared.wake_all();
        return true;
    }
    for t in env.take_tasks() {
        enqueue(shared, ctx, t);
    }
    true
}

/// Steals the newest half of the largest sibling queue into this
/// comper's own `Q_task`. Returns `false` when no victim is worth it.
///
/// While unspawned local vertices remain, spawning is cheaper than
/// contending on a sibling's lock, so a victim must then hold at least
/// a full batch; once spawns are exhausted any queue with ≥ `STEAL_MIN`
/// tasks qualifies. Capacity is safe without spilling: the thief refills only
/// when its queue is ≤ C, and a steal takes ≤ 1.5C (half of a ≤ 3C
/// victim), staying within the 3C bound.
///
/// Quiescence cannot miss a stolen task: the thief set its own `busy`
/// flag (`SeqCst`) before calling this, so from the moment tasks leave
/// the victim's queue until they are visible in the thief's queue, the
/// thief's flag keeps the worker non-quiescent.
fn try_steal<A: App>(shared: &Arc<WorkerShared<A>>, ctx: &mut ComperCtx) -> bool {
    let min_victim = if shared.local.unspawned() > 0 {
        shared.config.task_batch.max(STEAL_MIN)
    } else {
        STEAL_MIN
    };
    let victim = shared
        .compers
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != ctx.idx)
        .map(|(j, c)| (j, c.queue.len()))
        .max_by_key(|&(_, len)| len)
        .filter(|&(_, len)| len >= min_victim);
    let Some((j, _)) = victim else {
        return false;
    };
    let Some(stolen) = shared.compers[j].queue.steal_half(min_victim) else {
        return false;
    };
    shared.counters.steals.fetch_add(1, Ordering::Relaxed);
    shared.counters.stolen_tasks.fetch_add(stolen.len() as u64, Ordering::Relaxed);
    if shared.metrics.ring.enabled() {
        shared.metrics.ring.push(Event {
            ts: now_nanos(),
            dur: 0,
            tid: ctx.idx as u32,
            arg: stolen.len() as u64,
            kind: EventKind::Steal,
        });
    }
    shared.compers[ctx.idx].queue.push_batch(stolen);
    true
}
