//! Property-based tests for the graph substrate.

use gthinker_graph::adj::{count_intersect_sorted, intersect_sorted, AdjList};
use gthinker_graph::compressed::{write_compressed, CompressedGraph};
use gthinker_graph::gen;
use gthinker_graph::graph::Graph;
use gthinker_graph::ids::VertexId;
use gthinker_graph::load;
use gthinker_graph::partition::HashPartitioner;
use gthinker_graph::stats::GraphStats;
use gthinker_graph::subgraph::Subgraph;
use gthinker_graph::vbyte;
use proptest::prelude::*;

fn ids(v: Vec<u32>) -> Vec<VertexId> {
    v.into_iter().map(VertexId).collect()
}

proptest! {
    #[test]
    fn intersect_matches_naive_set_intersection(
        a in proptest::collection::vec(0u32..200, 0..60),
        b in proptest::collection::vec(0u32..200, 0..60),
    ) {
        let la = AdjList::from_unsorted(ids(a.clone()));
        let lb = AdjList::from_unsorted(ids(b.clone()));
        let fast = intersect_sorted(la.as_slice(), lb.as_slice());
        let sa: std::collections::BTreeSet<u32> = a.into_iter().collect();
        let sb: std::collections::BTreeSet<u32> = b.into_iter().collect();
        let naive: Vec<VertexId> = sa.intersection(&sb).map(|&x| VertexId(x)).collect();
        prop_assert_eq!(fast.clone(), naive);
        prop_assert_eq!(count_intersect_sorted(la.as_slice(), lb.as_slice()), fast.len());
    }

    #[test]
    fn greater_than_is_strict_and_complete(
        a in proptest::collection::vec(0u32..100, 0..50),
        pivot in 0u32..100,
    ) {
        let l = AdjList::from_unsorted(ids(a));
        let suffix = l.greater_than(VertexId(pivot));
        for &u in suffix {
            prop_assert!(u > VertexId(pivot));
        }
        let below = l.degree() - suffix.len();
        prop_assert_eq!(l.iter().filter(|&u| u <= VertexId(pivot)).count(), below);
    }

    #[test]
    fn from_edges_graph_is_undirected_and_loop_free(
        edges in proptest::collection::vec((0u32..40, 0u32..40), 0..120),
    ) {
        let pairs: Vec<(VertexId, VertexId)> =
            edges.iter().map(|&(u, v)| (VertexId(u), VertexId(v))).collect();
        let g = Graph::from_edges(40, &pairs);
        prop_assert!(g.validate_undirected().is_ok());
        for v in g.vertices() {
            prop_assert!(!g.has_edge(v, v));
        }
        // Degree sum is twice the edge count.
        let degsum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degsum, 2 * g.num_edges());
    }

    #[test]
    fn edge_list_round_trips_any_graph(
        edges in proptest::collection::vec((0u32..30, 0u32..30), 1..80),
    ) {
        let pairs: Vec<(VertexId, VertexId)> =
            edges.iter().map(|&(u, v)| (VertexId(u), VertexId(v))).collect();
        let g = Graph::from_edges(30, &pairs);
        let mut buf = Vec::new();
        load::write_edge_list(&g, &mut buf).unwrap();
        let g2 = load::read_edge_list(buf.as_slice()).unwrap();
        prop_assert_eq!(
            g.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn adjacency_format_round_trips(
        edges in proptest::collection::vec((0u32..25, 0u32..25), 1..60),
    ) {
        let pairs: Vec<(VertexId, VertexId)> =
            edges.iter().map(|&(u, v)| (VertexId(u), VertexId(v))).collect();
        let g = Graph::from_edges(25, &pairs);
        let mut buf = Vec::new();
        load::write_adjacency(&g, &mut buf).unwrap();
        let g2 = load::read_adjacency(buf.as_slice()).unwrap();
        for v in g.vertices() {
            prop_assert_eq!(g.neighbors(v), g2.neighbors(v));
        }
    }

    #[test]
    fn partitioner_assigns_every_vertex_exactly_once(
        n in 1usize..500,
        workers in 1u16..16,
    ) {
        let g = Graph::with_vertices(n);
        let p = HashPartitioner::new(workers);
        let parts = p.split(&g);
        let total: usize = parts.iter().map(Vec::len).sum();
        prop_assert_eq!(total, n);
    }

    #[test]
    fn subgraph_to_local_preserves_edge_count(
        edges in proptest::collection::vec((0u32..20, 0u32..20), 0..60),
    ) {
        let pairs: Vec<(VertexId, VertexId)> =
            edges.iter().map(|&(u, v)| (VertexId(u), VertexId(v))).collect();
        let g = Graph::from_edges(20, &pairs);
        // Build a subgraph holding the whole graph, one-directional.
        let mut sg = Subgraph::new();
        for v in g.vertices() {
            sg.add_vertex(v, AdjList::from_sorted(g.neighbors(v).greater_than(v).to_vec()));
        }
        prop_assert_eq!(sg.num_edges(), g.num_edges());
        let local = sg.to_local();
        prop_assert_eq!(local.num_edges(), g.num_edges());
        // Every edge survives with the same endpoints (via global IDs).
        for (u, v) in g.edges() {
            prop_assert!(sg.has_edge(u, v));
        }
    }

    #[test]
    fn varint_round_trips_any_u64(value in any::<u64>()) {
        let mut buf = Vec::new();
        vbyte::write_varint(value, &mut buf);
        prop_assert_eq!(buf.len(), vbyte::varint_len(value));
        let mut pos = 0;
        prop_assert_eq!(vbyte::read_varint(&buf, &mut pos).unwrap(), value);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_round_trips_any_i64(value in any::<i64>()) {
        prop_assert_eq!(vbyte::unzigzag(vbyte::zigzag(value)), value);
    }

    #[test]
    fn adjacency_codec_round_trips(
        v in 0u32..5000,
        raw in proptest::collection::vec(0u32..5000, 0..100),
    ) {
        // Covers degree-0 (empty list), singleton adjacency, and —
        // because the values are arbitrary — first-neighbor deltas of
        // both signs. Sort + dedup yields the strictly ascending input
        // the codec requires.
        let mut raw = raw;
        raw.sort_unstable();
        raw.dedup();
        let nbrs: Vec<VertexId> = raw.into_iter().map(VertexId).collect();
        let mut buf = Vec::new();
        vbyte::encode_adjacency(VertexId(v), &nbrs, &mut buf);
        let back = vbyte::decode_adjacency_exact(VertexId(v), &buf, 0, buf.len()).unwrap();
        prop_assert_eq!(back, nbrs);
    }

    #[test]
    fn adjacency_codec_handles_extreme_gaps(
        v in prop_oneof![Just(0u32), Just(u32::MAX), any::<u32>()],
        low in 0u32..4,
        high_off in 0u32..4,
    ) {
        // Max-gap edges: a neighbor near 0 and one near u32::MAX in the
        // same list forces a near-2^32 gap code.
        let a = low;
        let b = u32::MAX - high_off;
        prop_assume!(a < b);
        let nbrs = vec![VertexId(a), VertexId(b)];
        let mut buf = Vec::new();
        vbyte::encode_adjacency(VertexId(v), &nbrs, &mut buf);
        let back = vbyte::decode_adjacency_exact(VertexId(v), &buf, 0, buf.len()).unwrap();
        prop_assert_eq!(back, nbrs);
    }

    #[test]
    fn truncated_adjacency_records_error_cleanly(
        v in 0u32..1000,
        raw in proptest::collection::vec(0u32..100_000, 1..40),
        frac in 0.0f64..1.0,
    ) {
        let mut raw = raw;
        raw.sort_unstable();
        raw.dedup();
        let nbrs: Vec<VertexId> = raw.into_iter().map(VertexId).collect();
        let mut buf = Vec::new();
        vbyte::encode_adjacency(VertexId(v), &nbrs, &mut buf);
        let cut = ((buf.len() as f64) * frac) as usize; // always < len
        let result = vbyte::decode_adjacency_exact(VertexId(v), &buf, 0, cut);
        prop_assert!(result.is_err(), "cut to {} of {} bytes must fail", cut, buf.len());
    }

    #[test]
    fn corrupt_adjacency_bytes_never_panic(
        v in 0u32..1000,
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // Arbitrary bytes either decode to something or error — the
        // contract is simply "no panic, no out-of-bounds".
        let _ = vbyte::decode_adjacency_exact(VertexId(v), &garbage, 0, garbage.len());
    }

    #[test]
    fn compressed_file_round_trips_any_graph(
        edges in proptest::collection::vec((0u32..60, 0u32..60), 0..200),
        extra_vertices in 0usize..5,
    ) {
        let pairs: Vec<(VertexId, VertexId)> =
            edges.iter().map(|&(u, v)| (VertexId(u), VertexId(v))).collect();
        let g = Graph::from_edges(60 + extra_vertices, &pairs);
        let dir = std::env::temp_dir().join(format!("gthinker-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prop.gtc");
        write_compressed(&g, &path).unwrap();
        let c = CompressedGraph::open(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        prop_assert_eq!(c.num_vertices(), g.num_vertices());
        prop_assert_eq!(c.num_edges() as usize, g.num_edges());
        for v in g.vertices() {
            prop_assert_eq!(&c.adjacency(v), g.neighbors(v));
        }
    }

    #[test]
    fn corrupt_compressed_files_error_not_panic(
        edges in proptest::collection::vec((0u32..30, 0u32..30), 1..60),
        flip_byte in any::<u8>(),
        flip_frac in 0.0f64..1.0,
    ) {
        let pairs: Vec<(VertexId, VertexId)> =
            edges.iter().map(|&(u, v)| (VertexId(u), VertexId(v))).collect();
        let g = Graph::from_edges(30, &pairs);
        let dir = std::env::temp_dir().join(format!("gthinker-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("corrupt-{flip_byte}.gtc"));
        write_compressed(&g, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        let at = ((bytes.len() - 1) as f64 * flip_frac) as usize;
        if flip_byte != 0 {
            bytes[at] ^= flip_byte;
            prop_assert!(CompressedGraph::from_bytes(bytes).is_err());
        }
    }

    #[test]
    fn gnm_stats_are_consistent(n in 2usize..200, m in 0usize..400) {
        let g = gen::gnm(n, m, 99);
        let s = GraphStats::of(&g);
        prop_assert_eq!(s.num_vertices, n);
        prop_assert_eq!(s.num_edges, g.num_edges());
        prop_assert!(s.degree_p50 <= s.degree_p90);
        prop_assert!(s.degree_p90 <= s.degree_p99);
        prop_assert!(s.degree_p99 <= s.max_degree);
    }
}
