//! Property-based tests for the graph substrate.

use gthinker_graph::adj::{count_intersect_sorted, intersect_sorted, AdjList};
use gthinker_graph::gen;
use gthinker_graph::graph::Graph;
use gthinker_graph::ids::VertexId;
use gthinker_graph::load;
use gthinker_graph::partition::HashPartitioner;
use gthinker_graph::stats::GraphStats;
use gthinker_graph::subgraph::Subgraph;
use proptest::prelude::*;

fn ids(v: Vec<u32>) -> Vec<VertexId> {
    v.into_iter().map(VertexId).collect()
}

proptest! {
    #[test]
    fn intersect_matches_naive_set_intersection(
        a in proptest::collection::vec(0u32..200, 0..60),
        b in proptest::collection::vec(0u32..200, 0..60),
    ) {
        let la = AdjList::from_unsorted(ids(a.clone()));
        let lb = AdjList::from_unsorted(ids(b.clone()));
        let fast = intersect_sorted(la.as_slice(), lb.as_slice());
        let sa: std::collections::BTreeSet<u32> = a.into_iter().collect();
        let sb: std::collections::BTreeSet<u32> = b.into_iter().collect();
        let naive: Vec<VertexId> = sa.intersection(&sb).map(|&x| VertexId(x)).collect();
        prop_assert_eq!(fast.clone(), naive);
        prop_assert_eq!(count_intersect_sorted(la.as_slice(), lb.as_slice()), fast.len());
    }

    #[test]
    fn greater_than_is_strict_and_complete(
        a in proptest::collection::vec(0u32..100, 0..50),
        pivot in 0u32..100,
    ) {
        let l = AdjList::from_unsorted(ids(a));
        let suffix = l.greater_than(VertexId(pivot));
        for &u in suffix {
            prop_assert!(u > VertexId(pivot));
        }
        let below = l.degree() - suffix.len();
        prop_assert_eq!(l.iter().filter(|&u| u <= VertexId(pivot)).count(), below);
    }

    #[test]
    fn from_edges_graph_is_undirected_and_loop_free(
        edges in proptest::collection::vec((0u32..40, 0u32..40), 0..120),
    ) {
        let pairs: Vec<(VertexId, VertexId)> =
            edges.iter().map(|&(u, v)| (VertexId(u), VertexId(v))).collect();
        let g = Graph::from_edges(40, &pairs);
        prop_assert!(g.validate_undirected().is_ok());
        for v in g.vertices() {
            prop_assert!(!g.has_edge(v, v));
        }
        // Degree sum is twice the edge count.
        let degsum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degsum, 2 * g.num_edges());
    }

    #[test]
    fn edge_list_round_trips_any_graph(
        edges in proptest::collection::vec((0u32..30, 0u32..30), 1..80),
    ) {
        let pairs: Vec<(VertexId, VertexId)> =
            edges.iter().map(|&(u, v)| (VertexId(u), VertexId(v))).collect();
        let g = Graph::from_edges(30, &pairs);
        let mut buf = Vec::new();
        load::write_edge_list(&g, &mut buf).unwrap();
        let g2 = load::read_edge_list(buf.as_slice()).unwrap();
        prop_assert_eq!(
            g.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn adjacency_format_round_trips(
        edges in proptest::collection::vec((0u32..25, 0u32..25), 1..60),
    ) {
        let pairs: Vec<(VertexId, VertexId)> =
            edges.iter().map(|&(u, v)| (VertexId(u), VertexId(v))).collect();
        let g = Graph::from_edges(25, &pairs);
        let mut buf = Vec::new();
        load::write_adjacency(&g, &mut buf).unwrap();
        let g2 = load::read_adjacency(buf.as_slice()).unwrap();
        for v in g.vertices() {
            prop_assert_eq!(g.neighbors(v), g2.neighbors(v));
        }
    }

    #[test]
    fn partitioner_assigns_every_vertex_exactly_once(
        n in 1usize..500,
        workers in 1u16..16,
    ) {
        let g = Graph::with_vertices(n);
        let p = HashPartitioner::new(workers);
        let parts = p.split(&g);
        let total: usize = parts.iter().map(Vec::len).sum();
        prop_assert_eq!(total, n);
    }

    #[test]
    fn subgraph_to_local_preserves_edge_count(
        edges in proptest::collection::vec((0u32..20, 0u32..20), 0..60),
    ) {
        let pairs: Vec<(VertexId, VertexId)> =
            edges.iter().map(|&(u, v)| (VertexId(u), VertexId(v))).collect();
        let g = Graph::from_edges(20, &pairs);
        // Build a subgraph holding the whole graph, one-directional.
        let mut sg = Subgraph::new();
        for v in g.vertices() {
            sg.add_vertex(v, AdjList::from_sorted(g.neighbors(v).greater_than(v).to_vec()));
        }
        prop_assert_eq!(sg.num_edges(), g.num_edges());
        let local = sg.to_local();
        prop_assert_eq!(local.num_edges(), g.num_edges());
        // Every edge survives with the same endpoints (via global IDs).
        for (u, v) in g.edges() {
            prop_assert!(sg.has_edge(u, v));
        }
    }

    #[test]
    fn gnm_stats_are_consistent(n in 2usize..200, m in 0usize..400) {
        let g = gen::gnm(n, m, 99);
        let s = GraphStats::of(&g);
        prop_assert_eq!(s.num_vertices, n);
        prop_assert_eq!(s.num_edges, g.num_edges());
        prop_assert!(s.degree_p50 <= s.degree_p90);
        prop_assert!(s.degree_p90 <= s.degree_p99);
        prop_assert!(s.degree_p99 <= s.max_degree);
    }
}
