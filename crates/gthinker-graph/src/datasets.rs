//! Scaled-down synthetic stand-ins for the paper's datasets (Table II).
//!
//! The paper evaluates on Youtube, Skitter, Orkut, BTC and Friendster.
//! Those files are unavailable offline, so each gets a deterministic
//! synthetic stand-in that preserves the property the evaluation leans
//! on: relative size ordering, degree skew (BTC is called out as
//! extremely uneven), density (Orkut/Friendster are dense), and a
//! *planted clique* so maximum-clique finding has a known nontrivial
//! answer (Friendster's real maximum clique has 129 vertices; the
//! stand-in plants one scaled accordingly).
//!
//! All stand-ins scale with a `scale` factor so benches can trade
//! fidelity for runtime.

use crate::gen;
use crate::graph::Graph;
use crate::ids::VertexId;

/// Which paper dataset a stand-in mimics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DatasetKind {
    /// Youtube social network: smallest, moderately sparse.
    Youtube,
    /// Skitter internet topology: mid-size, moderate density.
    Skitter,
    /// Orkut social network: dense.
    Orkut,
    /// BTC semantic graph: large with extremely uneven degrees.
    Btc,
    /// Friendster social network: largest and densest.
    Friendster,
}

impl DatasetKind {
    /// All five stand-ins in the paper's Table II order.
    pub const ALL: [DatasetKind; 5] = [
        DatasetKind::Youtube,
        DatasetKind::Skitter,
        DatasetKind::Orkut,
        DatasetKind::Btc,
        DatasetKind::Friendster,
    ];

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Youtube => "youtube-s",
            DatasetKind::Skitter => "skitter-s",
            DatasetKind::Orkut => "orkut-s",
            DatasetKind::Btc => "btc-s",
            DatasetKind::Friendster => "friendster-s",
        }
    }

    /// The real dataset's `(|V|, |E|)` from the paper, for reporting
    /// alongside the stand-in's numbers.
    pub fn paper_size(self) -> (u64, u64) {
        match self {
            DatasetKind::Youtube => (1_134_890, 2_987_624),
            DatasetKind::Skitter => (1_696_415, 11_095_298),
            DatasetKind::Orkut => (3_072_441, 117_184_899),
            DatasetKind::Btc => (164_660_997, 772_822_094),
            DatasetKind::Friendster => (65_608_366, 1_806_067_135),
        }
    }
}

/// A generated stand-in dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Which paper dataset this mimics.
    pub kind: DatasetKind,
    /// The generated graph.
    pub graph: Graph,
    /// Members of the planted clique (sorted): the known lower bound on
    /// the maximum clique, and in practice the maximum itself because
    /// the background graphs are clique-poor.
    pub planted_clique: Vec<VertexId>,
}

/// Per-dataset generation parameters at `scale == 1.0`.
struct Spec {
    vertices: usize,
    /// Barabási–Albert attachment count — controls density.
    ba_m: usize,
    /// Extra hub overlay: `hubs` vertices each wired to `hub_degree`
    /// random others (models BTC's extreme skew). Zero disables it.
    hubs: usize,
    hub_degree: usize,
    /// Planted clique size.
    clique: usize,
    seed: u64,
}

fn spec(kind: DatasetKind) -> Spec {
    match kind {
        DatasetKind::Youtube => {
            Spec { vertices: 6_000, ba_m: 3, hubs: 0, hub_degree: 0, clique: 12, seed: 0x59_54 }
        }
        DatasetKind::Skitter => {
            Spec { vertices: 9_000, ba_m: 6, hubs: 0, hub_degree: 0, clique: 16, seed: 0x53_4b }
        }
        DatasetKind::Orkut => {
            Spec { vertices: 12_000, ba_m: 18, hubs: 0, hub_degree: 0, clique: 24, seed: 0x4f_52 }
        }
        DatasetKind::Btc => Spec {
            vertices: 20_000,
            ba_m: 3,
            hubs: 12,
            hub_degree: 2_000,
            clique: 10,
            seed: 0x42_54,
        },
        DatasetKind::Friendster => {
            Spec { vertices: 24_000, ba_m: 22, hubs: 0, hub_degree: 0, clique: 32, seed: 0x46_52 }
        }
    }
}

/// Generates the stand-in for `kind` at the given scale factor
/// (`1.0` = the default size used by the bench harness; smaller values
/// shrink vertex counts proportionally for quick tests).
pub fn generate(kind: DatasetKind, scale: f64) -> Dataset {
    assert!(scale > 0.0, "scale must be positive");
    let s = spec(kind);
    let n = ((s.vertices as f64 * scale) as usize).max(s.ba_m + 2).max(64);
    let clique = s.clique.min(n / 4).max(4);
    let mut g = gen::barabasi_albert(n, s.ba_m, s.seed);
    if s.hubs > 0 {
        g = overlay_hubs(&g, s.hubs, s.hub_degree.min(n / 2), s.seed ^ 0xdead_beef);
    }
    let (graph, planted_clique) = gen::plant_clique(&g, clique, s.seed ^ 0x5eed);
    Dataset { kind, graph, planted_clique }
}

/// Wires `hubs` extra high-degree vertices into `g` to produce BTC-like
/// degree skew.
fn overlay_hubs(g: &Graph, hubs: usize, hub_degree: usize, seed: u64) -> Graph {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let n = g.num_vertices();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    for h in 0..hubs.min(n) {
        let hub = VertexId(h as u32);
        for _ in 0..hub_degree {
            let t = VertexId(rng.gen_range(0..n as u32));
            if t != hub {
                edges.push((hub, t));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Generates all five stand-ins at a common scale.
pub fn generate_all(scale: f64) -> Vec<Dataset> {
    DatasetKind::ALL.iter().map(|&k| generate(k, scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn all_kinds_generate_and_validate() {
        for &k in &DatasetKind::ALL {
            let d = generate(k, 0.1);
            d.graph.validate_undirected().unwrap();
            assert!(d.graph.num_vertices() >= 64, "{} too small", k.name());
            assert!(!d.planted_clique.is_empty());
        }
    }

    #[test]
    fn planted_clique_is_complete() {
        let d = generate(DatasetKind::Youtube, 0.2);
        let c = &d.planted_clique;
        for i in 0..c.len() {
            for j in (i + 1)..c.len() {
                assert!(d.graph.has_edge(c[i], c[j]));
            }
        }
    }

    #[test]
    fn density_ordering_matches_paper() {
        // Orkut/Friendster stand-ins must be denser than Youtube's.
        let yt = GraphStats::of(&generate(DatasetKind::Youtube, 0.2).graph);
        let ok = GraphStats::of(&generate(DatasetKind::Orkut, 0.2).graph);
        let fr = GraphStats::of(&generate(DatasetKind::Friendster, 0.2).graph);
        assert!(ok.avg_degree > 2.0 * yt.avg_degree);
        assert!(fr.avg_degree > 2.0 * yt.avg_degree);
        assert!(fr.num_vertices > yt.num_vertices);
    }

    #[test]
    fn btc_standin_is_skewed() {
        let d = generate(DatasetKind::Btc, 0.2);
        let s = GraphStats::of(&d.graph);
        assert!(
            s.max_degree as f64 > 20.0 * s.avg_degree,
            "BTC stand-in lacks skew: max {} avg {}",
            s.max_degree,
            s.avg_degree
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(DatasetKind::Skitter, 0.1);
        let b = generate(DatasetKind::Skitter, 0.1);
        assert_eq!(a.planted_clique, b.planted_clique);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    }

    #[test]
    fn paper_sizes_reported() {
        let (v, e) = DatasetKind::Friendster.paper_size();
        assert_eq!(v, 65_608_366);
        assert_eq!(e, 1_806_067_135);
    }
}
