//! Graph substrate for the G-thinker reproduction.
//!
//! This crate provides everything the framework needs to represent and
//! manipulate graphs:
//!
//! * [`VertexId`] / [`Label`] — compact identifier newtypes ([`ids`]).
//! * [`AdjList`] — sorted adjacency lists with the `Γ(v)` / `Γ_>(v)`
//!   operations used throughout the paper ([`adj`]).
//! * [`bitset::BitSet`] — dense word-parallel sets backing the serial
//!   miners' BBMC-style kernels ([`bitset`]).
//! * [`Graph`] — an in-memory undirected (optionally labeled) graph with
//!   builders, induced-subgraph extraction and degree statistics
//!   ([`graph`]).
//! * [`Subgraph`] — the growable, task-local subgraph `g` that a task
//!   constructs by pulling vertices ([`subgraph`]).
//! * Deterministic random generators (Erdős–Rényi, Barabási–Albert,
//!   planted cliques, labeled graphs) in [`gen`], plus scaled-down
//!   stand-ins for the paper's five datasets in [`datasets`].
//! * Text loaders/writers for edge-list and adjacency-list formats
//!   ([`load`]), hash partitioning ([`partition`]) and adjacency-list
//!   trimming ([`trim`]).
//!
//! The G-thinker paper assumes the input graph is stored as a set of
//! `(v, Γ(v))` pairs on HDFS and hash-partitioned over workers; this crate
//! reproduces that model with local files and [`partition::HashPartitioner`].

pub mod adj;
pub mod bitset;
pub mod compressed;
pub mod crc;
pub mod csr;
pub mod datasets;
pub mod gen;
pub mod graph;
pub mod hash;
pub mod ids;
pub mod load;
pub mod mmap;
pub mod order;
pub mod partition;
pub mod stats;
pub mod store;
pub mod subgraph;
pub mod trim;
pub mod vbyte;

pub use adj::AdjList;
pub use compressed::CompressedGraph;
pub use graph::Graph;
pub use ids::{Label, VertexId};
pub use partition::HashPartitioner;
pub use store::AdjacencyStore;
pub use subgraph::Subgraph;
pub use trim::Trimmer;
