//! Text and binary loaders/writers for graph files.
//!
//! G-thinker loads its input from HDFS as one `(v, Γ(v))` record per
//! line. We reproduce that format ([`read_adjacency`] /
//! [`write_adjacency`]) plus the ubiquitous SNAP-style edge-list format
//! ([`read_edge_list`] / [`write_edge_list`]), a compact binary
//! adjacency format ([`read_binary`] / [`write_binary`]) and a binary
//! *edge stream* format ([`EdgeFileWriter`] / [`for_each_edge_file`])
//! that the streaming generators write without ever holding the edge
//! list in memory. Lines starting with `#` are comments in both text
//! formats.
//!
//! ## Malformed input policy
//!
//! * Parse failures report the **file name** (when known) and 1-based
//!   line number — never a panic.
//! * **Self-loops** (`u u`) are *dropped* by the lenient text loaders
//!   (real-world SNAP dumps contain them) — consistently in both the
//!   edge-list and adjacency formats. The strict binary formats, which
//!   only our own writers produce, *reject* them as corruption.
//! * **Duplicate edges** collapse in the text loaders; the binary
//!   adjacency format rejects them (its writer never emits any).

use crate::adj::AdjList;
use crate::graph::Graph;
use crate::ids::{Label, VertexId};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors produced while parsing graph files.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying IO failure.
    Io(io::Error),
    /// A malformed line, with the source file (when known), its 1-based
    /// line number (0 for binary formats) and the offending content.
    Parse { file: Option<String>, line: usize, content: String },
}

impl LoadError {
    fn parse(line: usize, content: impl Into<String>) -> Self {
        LoadError::Parse { file: None, line, content: content.into() }
    }

    /// Attaches the source file name to a parse error (IO errors keep
    /// their own context).
    pub fn in_file(mut self, path: &Path) -> Self {
        if let LoadError::Parse { file, .. } = &mut self {
            *file = Some(path.display().to_string());
        }
        self
    }
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Parse { file, line, content } => {
                match file {
                    Some(name) => write!(f, "{name}:")?,
                    None => write!(f, "parse error at ")?,
                }
                if *line > 0 {
                    write!(f, "line {line}: ")?;
                }
                write!(f, "{content:?}")
            }
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<LoadError> for io::Error {
    fn from(e: LoadError) -> Self {
        match e {
            LoadError::Io(e) => e,
            parse => io::Error::new(io::ErrorKind::InvalidData, parse.to_string()),
        }
    }
}

/// Streams the edges of a whitespace-separated text edge list (`u v`
/// per line) into `sink`. Self-loops are dropped; duplicates pass
/// through. Returns the number of edges delivered.
pub fn for_each_edge_text<R: Read>(
    reader: R,
    sink: &mut dyn FnMut(VertexId, VertexId) -> io::Result<()>,
) -> Result<u64, LoadError> {
    let buf = BufReader::new(reader);
    let mut count = 0u64;
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (u, v) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => {
                let parse = |s: &str| {
                    s.parse::<u32>().map_err(|_| LoadError::parse(lineno + 1, line.clone()))
                };
                (parse(a)?, parse(b)?)
            }
            _ => return Err(LoadError::parse(lineno + 1, line)),
        };
        if u == v {
            continue; // lenient: drop self-loops (see module docs)
        }
        sink(VertexId(u), VertexId(v))?;
        count += 1;
    }
    Ok(count)
}

/// Reads a whitespace-separated edge list. Vertex count is `max id + 1`.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, LoadError> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id: u32 = 0;
    let mut any = false;
    for_each_edge_text(reader, &mut |u, v| {
        any = true;
        max_id = max_id.max(u.0).max(v.0);
        edges.push((u, v));
        Ok(())
    })?;
    let n = if any { max_id as usize + 1 } else { 0 };
    Ok(Graph::from_edges(n, &edges))
}

/// Writes `g` as an edge list, each undirected edge once.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# edges: {}", g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Reads the G-thinker adjacency format: `v<TAB>n u1 u2 ... un` per line
/// (the layout the paper's HDFS loader parses). Labeled variant:
/// `v:label<TAB>n u1 ...`. Self-loops (`v` listing itself) are dropped;
/// a vertex appearing on two lines is a parse error.
pub fn read_adjacency<R: Read>(reader: R) -> Result<Graph, LoadError> {
    let buf = BufReader::new(reader);
    let mut rows: Vec<(u32, Option<Label>, Vec<VertexId>)> = Vec::new();
    let mut max_id: u32 = 0;
    let mut labeled = false;
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let err = || LoadError::parse(lineno + 1, line.clone());
        let (head, rest) = t.split_once(char::is_whitespace).ok_or_else(err)?;
        let (v, label) = if let Some((vs, ls)) = head.split_once(':') {
            labeled = true;
            (
                vs.parse::<u32>().map_err(|_| err())?,
                Some(Label(ls.parse::<u16>().map_err(|_| err())?)),
            )
        } else {
            (head.parse::<u32>().map_err(|_| err())?, None)
        };
        let mut it = rest.split_whitespace();
        let count: usize = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let mut nbrs = Vec::with_capacity(count);
        let mut dropped_loops = 0usize;
        for tok in it {
            let u = tok.parse::<u32>().map_err(|_| err())?;
            max_id = max_id.max(u);
            if u == v {
                dropped_loops += 1; // lenient: drop self-loops (see module docs)
                continue;
            }
            nbrs.push(VertexId(u));
        }
        // The declared count covers the list as written, including any
        // self-loops we just dropped.
        if nbrs.len() + dropped_loops != count {
            return Err(err());
        }
        max_id = max_id.max(v);
        rows.push((v, label, nbrs));
    }
    if rows.is_empty() {
        return Ok(Graph::with_vertices(0));
    }
    let n = max_id as usize + 1;
    let mut adj = vec![AdjList::new(); n];
    let mut seen = vec![false; n];
    let mut labels = vec![Label::default(); n];
    for (v, label, nbrs) in rows {
        if seen[v as usize] {
            return Err(LoadError::parse(0, format!("vertex {v} defined on more than one line")));
        }
        seen[v as usize] = true;
        adj[v as usize] = AdjList::from_unsorted(nbrs);
        if let Some(l) = label {
            labels[v as usize] = l;
        }
    }
    let g = Graph::from_adjacency(adj);
    Ok(if labeled { g.with_labels(labels) } else { g })
}

/// Writes `g` in the adjacency format (labeled if `g` is labeled).
pub fn write_adjacency<W: Write>(g: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for v in g.vertices() {
        let adj = g.neighbors(v);
        match g.label(v) {
            Some(l) => write!(w, "{v}:{l}\t{}", adj.degree())?,
            None => write!(w, "{v}\t{}", adj.degree())?,
        }
        for u in adj.iter() {
            write!(w, " {u}")?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Convenience: loads an edge-list file from disk, naming the file in
/// any parse error.
pub fn load_edge_list_file(path: &Path) -> Result<Graph, LoadError> {
    read_edge_list(std::fs::File::open(path)?).map_err(|e| e.in_file(path))
}

/// Convenience: loads an adjacency file from disk, naming the file in
/// any parse error.
pub fn load_adjacency_file(path: &Path) -> Result<Graph, LoadError> {
    read_adjacency(std::fs::File::open(path)?).map_err(|e| e.in_file(path))
}

/// Convenience: loads a binary adjacency file from disk, naming the
/// file in any parse error.
pub fn load_binary_file(path: &Path) -> Result<Graph, LoadError> {
    read_binary(std::fs::File::open(path)?).map_err(|e| e.in_file(path))
}

/// Magic header of the binary adjacency format.
const BINARY_MAGIC: &[u8; 8] = b"GTHINK01";

/// Writes `g` in a compact binary format (little-endian; much faster
/// to parse than text). Layout: magic, `n: u64`,
/// `labeled: u8`, per-vertex `degree: u32` + neighbor `u32`s, then the
/// label table when labeled.
pub fn write_binary<W: Write>(g: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&[g.is_labeled() as u8])?;
    for v in g.vertices() {
        let adj = g.neighbors(v);
        w.write_all(&(adj.degree() as u32).to_le_bytes())?;
        for u in adj.iter() {
            w.write_all(&u.0.to_le_bytes())?;
        }
    }
    if let Some(labels) = g.labels() {
        for l in labels {
            w.write_all(&l.0.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Reads the binary format written by [`write_binary`]. Strict: rejects
/// unsorted/duplicate adjacency and self-loops (our writer emits
/// neither, so their presence means corruption).
pub fn read_binary<R: Read>(reader: R) -> Result<Graph, LoadError> {
    let mut r = BufReader::new(reader);
    let bad = |what: &str| LoadError::parse(0, what);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(bad("bad magic"));
    }
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf)?;
    let n = u64::from_le_bytes(u64buf) as usize;
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let labeled = match flag[0] {
        0 => false,
        1 => true,
        _ => return Err(bad("bad label flag")),
    };
    let mut u32buf = [0u8; 4];
    let mut adj = Vec::with_capacity(n);
    for v in 0..n {
        r.read_exact(&mut u32buf)?;
        let deg = u32::from_le_bytes(u32buf) as usize;
        let mut nbrs = Vec::with_capacity(deg.min(1 << 20));
        for _ in 0..deg {
            r.read_exact(&mut u32buf)?;
            nbrs.push(VertexId(u32::from_le_bytes(u32buf)));
        }
        if nbrs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(bad("unsorted or duplicate adjacency"));
        }
        if nbrs.binary_search(&VertexId(v as u32)).is_ok() {
            return Err(bad("self-loop in adjacency"));
        }
        adj.push(AdjList::from_sorted(nbrs));
    }
    let g = Graph::from_adjacency(adj);
    if labeled {
        let mut labels = Vec::with_capacity(n);
        let mut u16buf = [0u8; 2];
        for _ in 0..n {
            r.read_exact(&mut u16buf)?;
            labels.push(Label(u16::from_le_bytes(u16buf)));
        }
        Ok(g.with_labels(labels))
    } else {
        Ok(g)
    }
}

/// Magic header of the binary edge-stream format (`.bel`).
const EDGE_BINARY_MAGIC: &[u8; 8] = b"GTEDGE01";

/// Appends edges to a binary edge-stream file: magic, then `(u, v)`
/// pairs of `u32` little-endian until EOF. The format is what the
/// streaming generators write — sequential, append-only, 8 bytes per
/// edge, no in-memory edge list anywhere.
pub struct EdgeFileWriter {
    w: BufWriter<std::fs::File>,
    count: u64,
}

impl EdgeFileWriter {
    /// Creates (truncates) the file at `path` and writes the magic.
    pub fn create(path: &Path) -> io::Result<EdgeFileWriter> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        w.write_all(EDGE_BINARY_MAGIC)?;
        Ok(EdgeFileWriter { w, count: 0 })
    }

    /// Appends one edge.
    pub fn edge(&mut self, u: VertexId, v: VertexId) -> io::Result<()> {
        self.w.write_all(&u.0.to_le_bytes())?;
        self.w.write_all(&v.0.to_le_bytes())?;
        self.count += 1;
        Ok(())
    }

    /// Flushes and returns the number of edges written.
    pub fn finish(mut self) -> io::Result<u64> {
        self.w.flush()?;
        Ok(self.count)
    }
}

/// Streams the edges of a binary edge-stream file into `sink`.
/// Self-loops are dropped (same lenient policy as the text loader); a
/// trailing partial pair is a clean parse error.
pub fn for_each_edge_binary<R: Read>(
    reader: R,
    sink: &mut dyn FnMut(VertexId, VertexId) -> io::Result<()>,
) -> Result<u64, LoadError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != EDGE_BINARY_MAGIC {
        return Err(LoadError::parse(0, "bad magic: not a GTEDGE01 edge stream"));
    }
    let mut pair = [0u8; 8];
    let mut count = 0u64;
    loop {
        // Byte-exact fill so clean EOF (0 bytes) and a torn trailing
        // pair (1..7 bytes) are distinguishable.
        let mut got = 0usize;
        while got < 8 {
            match r.read(&mut pair[got..]) {
                Ok(0) => break,
                Ok(k) => got += k,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        if got == 0 {
            return Ok(count);
        }
        if got < 8 {
            return Err(LoadError::parse(0, "truncated edge pair at end of file"));
        }
        let u = u32::from_le_bytes(pair[..4].try_into().unwrap());
        let v = u32::from_le_bytes(pair[4..].try_into().unwrap());
        if u == v {
            continue;
        }
        sink(VertexId(u), VertexId(v))?;
        count += 1;
    }
}

/// Streams every edge of the file at `path` into `sink`, dispatching on
/// extension: `.bel` is the binary edge stream, anything else is the
/// text edge list. Parse errors name the file.
pub fn for_each_edge_file(
    path: &Path,
    sink: &mut dyn FnMut(VertexId, VertexId) -> io::Result<()>,
) -> Result<u64, LoadError> {
    let f = std::fs::File::open(path)?;
    let result = if path.extension().is_some_and(|e| e == "bel") {
        for_each_edge_binary(f, sink)
    } else {
        for_each_edge_text(f, sink)
    };
    result.map_err(|e| e.in_file(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn edge_list_round_trip() {
        let g = gen::gnp(60, 0.1, 4);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(g.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
    }

    #[test]
    fn adjacency_round_trip_unlabeled() {
        let g = gen::barabasi_albert(80, 2, 5);
        let mut buf = Vec::new();
        write_adjacency(&g, &mut buf).unwrap();
        let g2 = read_adjacency(buf.as_slice()).unwrap();
        assert!(!g2.is_labeled());
        assert_eq!(g.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
    }

    #[test]
    fn adjacency_round_trip_labeled() {
        let g = gen::random_labels(gen::gnp(40, 0.15, 6), 5, 7);
        let mut buf = Vec::new();
        write_adjacency(&g, &mut buf).unwrap();
        let g2 = read_adjacency(buf.as_slice()).unwrap();
        assert!(g2.is_labeled());
        for v in g.vertices() {
            assert_eq!(g.label(v), g2.label(v));
        }
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# comment\n\n0 1\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_lines_reported_with_position() {
        let text = "0 1\nbogus\n";
        match read_edge_list(text.as_bytes()) {
            Err(LoadError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let text2 = "0\tx 1 2\n"; // degree field is not a number
        assert!(matches!(read_adjacency(text2.as_bytes()), Err(LoadError::Parse { line: 1, .. })));
    }

    #[test]
    fn parse_errors_name_the_file() {
        let dir = std::env::temp_dir().join(format!("gthinker-load-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.el");
        std::fs::write(&path, "0 1\n7 banana\n").unwrap();
        let err = load_edge_list_file(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("broken.el"), "missing file name: {msg}");
        assert!(msg.contains("line 2"), "missing line number: {msg}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn self_loops_dropped_consistently_in_text_formats() {
        // Edge list: 1-1 dropped, 0-1 kept.
        let g = read_edge_list("0 1\n1 1\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(VertexId(1), VertexId(1)));
        // Adjacency: vertex 1 lists itself; the loop is dropped, the
        // real neighbor survives.
        let g = read_adjacency("0\t1 1\n1\t2 0 1\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(VertexId(1), VertexId(1)));
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        g.validate_undirected().unwrap();
    }

    #[test]
    fn duplicate_adjacency_rows_rejected() {
        let err = read_adjacency("0\t1 1\n0\t1 1\n1\t1 0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("more than one line"), "{err}");
    }

    #[test]
    fn binary_round_trip_unlabeled() {
        let g = gen::barabasi_albert(300, 4, 8);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        for v in g.vertices() {
            assert_eq!(g2.neighbors(v), g.neighbors(v));
        }
        // Size is deterministic: header + per-vertex records.
        let expected =
            8 + 8 + 1 + g.num_vertices() * 4 + g.vertices().map(|v| 4 * g.degree(v)).sum::<usize>();
        assert_eq!(buf.len(), expected);
    }

    #[test]
    fn binary_round_trip_labeled() {
        let g = gen::random_labels(gen::gnp(50, 0.1, 2), 6, 3);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(buf.as_slice()).unwrap();
        assert!(g2.is_labeled());
        for v in g.vertices() {
            assert_eq!(g2.label(v), g.label(v));
        }
    }

    #[test]
    fn binary_rejects_corruption_and_self_loops() {
        let g = gen::cycle(5);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xff;
        assert!(read_binary(bad.as_slice()).is_err());
        // Truncation.
        assert!(read_binary(&buf[..buf.len() - 3]).is_err());
        // Hand-craft a record with a self-loop: n=1, unlabeled, Γ(0)={0}.
        let mut evil = Vec::new();
        evil.extend_from_slice(b"GTHINK01");
        evil.extend_from_slice(&1u64.to_le_bytes());
        evil.push(0);
        evil.extend_from_slice(&1u32.to_le_bytes());
        evil.extend_from_slice(&0u32.to_le_bytes());
        let err = read_binary(evil.as_slice()).unwrap_err();
        assert!(err.to_string().contains("self-loop"), "{err}");
    }

    #[test]
    fn binary_edge_stream_round_trips() {
        let dir = std::env::temp_dir().join(format!("gthinker-bel-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.bel");
        let mut w = EdgeFileWriter::create(&path).unwrap();
        let written = vec![(0u32, 1u32), (5, 2), (3, 3), (2, 9)]; // (3,3) is a self-loop
        for &(u, v) in &written {
            w.edge(VertexId(u), VertexId(v)).unwrap();
        }
        assert_eq!(w.finish().unwrap(), 4);
        let mut got = Vec::new();
        let n = for_each_edge_file(&path, &mut |u, v| {
            got.push((u.0, v.0));
            Ok(())
        })
        .unwrap();
        assert_eq!(n, 3, "self-loop must be dropped");
        assert_eq!(got, vec![(0, 1), (5, 2), (2, 9)]);
        // Torn trailing pair is a clean error naming the file.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.pop();
        std::fs::write(&path, &bytes).unwrap();
        let err = for_each_edge_file(&path, &mut |_, _| Ok(())).unwrap_err();
        assert!(err.to_string().contains("edges.bel"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn text_edge_streaming_matches_loader() {
        let g = gen::gnp(40, 0.2, 9);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let mut streamed = Vec::new();
        let n = for_each_edge_text(buf.as_slice(), &mut |u, v| {
            streamed.push((u, v));
            Ok(())
        })
        .unwrap();
        assert_eq!(n as usize, g.num_edges());
        assert_eq!(streamed, g.edges().collect::<Vec<_>>());
    }

    #[test]
    fn empty_inputs_yield_empty_graphs() {
        assert_eq!(read_edge_list("".as_bytes()).unwrap().num_vertices(), 0);
        assert_eq!(read_adjacency("# x\n".as_bytes()).unwrap().num_vertices(), 0);
    }
}
