//! Text loaders and writers for graph files.
//!
//! G-thinker loads its input from HDFS as one `(v, Γ(v))` record per
//! line. We reproduce that format ([`read_adjacency`] /
//! [`write_adjacency`]) plus the ubiquitous SNAP-style edge-list format
//! ([`read_edge_list`] / [`write_edge_list`]). Lines starting with `#`
//! are comments in both formats.

use crate::adj::AdjList;
use crate::graph::Graph;
use crate::ids::{Label, VertexId};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors produced while parsing graph files.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying IO failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number and content.
    Parse { line: usize, content: String },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Parse { line, content } => {
                write!(f, "parse error at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Reads a whitespace-separated edge list (`u v` per line). Vertex count
/// is `max id + 1`.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, LoadError> {
    let buf = BufReader::new(reader);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id: u32 = 0;
    let mut any = false;
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (u, v) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => {
                let parse = |s: &str| {
                    s.parse::<u32>()
                        .map_err(|_| LoadError::Parse { line: lineno + 1, content: line.clone() })
                };
                (parse(a)?, parse(b)?)
            }
            _ => {
                return Err(LoadError::Parse { line: lineno + 1, content: line });
            }
        };
        any = true;
        max_id = max_id.max(u).max(v);
        edges.push((VertexId(u), VertexId(v)));
    }
    let n = if any { max_id as usize + 1 } else { 0 };
    Ok(Graph::from_edges(n, &edges))
}

/// Writes `g` as an edge list, each undirected edge once.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# edges: {}", g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Reads the G-thinker adjacency format: `v<TAB>n u1 u2 ... un` per line
/// (the layout the paper's HDFS loader parses). Labeled variant:
/// `v:label<TAB>n u1 ...`.
pub fn read_adjacency<R: Read>(reader: R) -> Result<Graph, LoadError> {
    let buf = BufReader::new(reader);
    let mut rows: Vec<(u32, Option<Label>, Vec<VertexId>)> = Vec::new();
    let mut max_id: u32 = 0;
    let mut labeled = false;
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let err = || LoadError::Parse { line: lineno + 1, content: line.clone() };
        let (head, rest) = t.split_once(char::is_whitespace).ok_or_else(err)?;
        let (v, label) = if let Some((vs, ls)) = head.split_once(':') {
            labeled = true;
            (
                vs.parse::<u32>().map_err(|_| err())?,
                Some(Label(ls.parse::<u16>().map_err(|_| err())?)),
            )
        } else {
            (head.parse::<u32>().map_err(|_| err())?, None)
        };
        let mut it = rest.split_whitespace();
        let count: usize = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let mut nbrs = Vec::with_capacity(count);
        for tok in it {
            let u = tok.parse::<u32>().map_err(|_| err())?;
            max_id = max_id.max(u);
            nbrs.push(VertexId(u));
        }
        if nbrs.len() != count {
            return Err(err());
        }
        max_id = max_id.max(v);
        rows.push((v, label, nbrs));
    }
    if rows.is_empty() {
        return Ok(Graph::with_vertices(0));
    }
    let n = max_id as usize + 1;
    let mut adj = vec![AdjList::new(); n];
    let mut labels = vec![Label::default(); n];
    for (v, label, nbrs) in rows {
        adj[v as usize] = AdjList::from_unsorted(nbrs);
        if let Some(l) = label {
            labels[v as usize] = l;
        }
    }
    let g = Graph::from_adjacency(adj);
    Ok(if labeled { g.with_labels(labels) } else { g })
}

/// Writes `g` in the adjacency format (labeled if `g` is labeled).
pub fn write_adjacency<W: Write>(g: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for v in g.vertices() {
        let adj = g.neighbors(v);
        match g.label(v) {
            Some(l) => write!(w, "{v}:{l}\t{}", adj.degree())?,
            None => write!(w, "{v}\t{}", adj.degree())?,
        }
        for u in adj.iter() {
            write!(w, " {u}")?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Convenience: loads an edge-list file from disk.
pub fn load_edge_list_file(path: &Path) -> Result<Graph, LoadError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Convenience: loads an adjacency file from disk.
pub fn load_adjacency_file(path: &Path) -> Result<Graph, LoadError> {
    read_adjacency(std::fs::File::open(path)?)
}

/// Magic header of the binary graph format.
const BINARY_MAGIC: &[u8; 8] = b"GTHINK01";

/// Writes `g` in a compact binary format (little-endian; much faster
/// to parse than text). Layout: magic, `n: u64`,
/// `labeled: u8`, per-vertex `degree: u32` + neighbor `u32`s, then the
/// label table when labeled.
pub fn write_binary<W: Write>(g: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&[g.is_labeled() as u8])?;
    for v in g.vertices() {
        let adj = g.neighbors(v);
        w.write_all(&(adj.degree() as u32).to_le_bytes())?;
        for u in adj.iter() {
            w.write_all(&u.0.to_le_bytes())?;
        }
    }
    if let Some(labels) = g.labels() {
        for l in labels {
            w.write_all(&l.0.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Reads the binary format written by [`write_binary`].
pub fn read_binary<R: Read>(reader: R) -> Result<Graph, LoadError> {
    let mut r = BufReader::new(reader);
    let bad = |what: &str| LoadError::Parse { line: 0, content: what.to_string() };
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(bad("bad magic"));
    }
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf)?;
    let n = u64::from_le_bytes(u64buf) as usize;
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let labeled = match flag[0] {
        0 => false,
        1 => true,
        _ => return Err(bad("bad label flag")),
    };
    let mut u32buf = [0u8; 4];
    let mut adj = Vec::with_capacity(n);
    for _ in 0..n {
        r.read_exact(&mut u32buf)?;
        let deg = u32::from_le_bytes(u32buf) as usize;
        let mut nbrs = Vec::with_capacity(deg.min(1 << 20));
        for _ in 0..deg {
            r.read_exact(&mut u32buf)?;
            nbrs.push(VertexId(u32::from_le_bytes(u32buf)));
        }
        if nbrs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(bad("unsorted adjacency"));
        }
        adj.push(AdjList::from_sorted(nbrs));
    }
    let g = Graph::from_adjacency(adj);
    if labeled {
        let mut labels = Vec::with_capacity(n);
        let mut u16buf = [0u8; 2];
        for _ in 0..n {
            r.read_exact(&mut u16buf)?;
            labels.push(Label(u16::from_le_bytes(u16buf)));
        }
        Ok(g.with_labels(labels))
    } else {
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn edge_list_round_trip() {
        let g = gen::gnp(60, 0.1, 4);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(g.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
    }

    #[test]
    fn adjacency_round_trip_unlabeled() {
        let g = gen::barabasi_albert(80, 2, 5);
        let mut buf = Vec::new();
        write_adjacency(&g, &mut buf).unwrap();
        let g2 = read_adjacency(buf.as_slice()).unwrap();
        assert!(!g2.is_labeled());
        assert_eq!(g.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
    }

    #[test]
    fn adjacency_round_trip_labeled() {
        let g = gen::random_labels(gen::gnp(40, 0.15, 6), 5, 7);
        let mut buf = Vec::new();
        write_adjacency(&g, &mut buf).unwrap();
        let g2 = read_adjacency(buf.as_slice()).unwrap();
        assert!(g2.is_labeled());
        for v in g.vertices() {
            assert_eq!(g.label(v), g2.label(v));
        }
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# comment\n\n0 1\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_lines_reported_with_position() {
        let text = "0 1\nbogus\n";
        match read_edge_list(text.as_bytes()) {
            Err(LoadError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let text2 = "0\t3 1 2\n"; // claims 3 neighbors, lists 2
        assert!(matches!(read_adjacency(text2.as_bytes()), Err(LoadError::Parse { line: 1, .. })));
    }

    #[test]
    fn binary_round_trip_unlabeled() {
        let g = gen::barabasi_albert(300, 4, 8);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        for v in g.vertices() {
            assert_eq!(g2.neighbors(v), g.neighbors(v));
        }
        // Size is deterministic: header + per-vertex records.
        let expected =
            8 + 8 + 1 + g.num_vertices() * 4 + g.vertices().map(|v| 4 * g.degree(v)).sum::<usize>();
        assert_eq!(buf.len(), expected);
    }

    #[test]
    fn binary_round_trip_labeled() {
        let g = gen::random_labels(gen::gnp(50, 0.1, 2), 6, 3);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(buf.as_slice()).unwrap();
        assert!(g2.is_labeled());
        for v in g.vertices() {
            assert_eq!(g2.label(v), g.label(v));
        }
    }

    #[test]
    fn binary_rejects_corruption() {
        let g = gen::cycle(5);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xff;
        assert!(read_binary(bad.as_slice()).is_err());
        // Truncation.
        assert!(read_binary(&buf[..buf.len() - 3]).is_err());
    }

    #[test]
    fn empty_inputs_yield_empty_graphs() {
        assert_eq!(read_edge_list("".as_bytes()).unwrap().num_vertices(), 0);
        assert_eq!(read_adjacency("# x\n".as_bytes()).unwrap().num_vertices(), 0);
    }
}
