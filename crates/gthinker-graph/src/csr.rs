//! Compressed sparse row (CSR) graph storage.
//!
//! [`Graph`] stores one heap allocation per vertex, which is the right
//! shape for per-vertex serving from `T_local`, but baselines and
//! read-only analytics prefer a single contiguous layout: two arrays
//! (`offsets`, `targets`) with no per-vertex overhead, better cache
//! behaviour and ~⅓ the allocator traffic. [`Csr`] is immutable and
//! convertible to/from [`Graph`].

use crate::adj::AdjList;
use crate::graph::Graph;
use crate::ids::VertexId;

/// An immutable CSR-encoded undirected graph.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for vertex `v`.
    offsets: Vec<u64>,
    /// Concatenated sorted adjacency lists.
    targets: Vec<VertexId>,
}

impl Csr {
    /// Converts from the per-vertex representation.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * g.num_edges());
        offsets.push(0);
        for v in g.vertices() {
            targets.extend(g.neighbors(v).iter());
            offsets.push(targets.len() as u64);
        }
        Csr { offsets, targets }
    }

    /// Converts back to the per-vertex representation.
    pub fn to_graph(&self) -> Graph {
        let adj = (0..self.num_vertices())
            .map(|v| AdjList::from_sorted(self.neighbors(VertexId(v as u32)).to_vec()))
            .collect();
        Graph::from_adjacency(adj)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Sorted neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Edge membership by binary search.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        u != v && self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Total heap bytes — contrast with [`Graph::heap_bytes`].
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u64>()
            + self.targets.capacity() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn round_trips_through_graph() {
        let g = gen::barabasi_albert(500, 4, 3);
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.num_vertices(), g.num_vertices());
        assert_eq!(csr.num_edges(), g.num_edges());
        let back = csr.to_graph();
        for v in g.vertices() {
            assert_eq!(back.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn queries_agree_with_graph() {
        let g = gen::gnp(120, 0.08, 5);
        let csr = Csr::from_graph(&g);
        for v in g.vertices() {
            assert_eq!(csr.degree(v), g.degree(v));
            assert_eq!(csr.neighbors(v), g.neighbors(v).as_slice());
        }
        for (u, v) in g.edges().take(200) {
            assert!(csr.has_edge(u, v));
            assert!(csr.has_edge(v, u));
        }
        assert!(!csr.has_edge(VertexId(0), VertexId(0)));
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_graph(&Graph::with_vertices(0));
        assert_eq!(csr.num_vertices(), 0);
        assert_eq!(csr.num_edges(), 0);
    }

    #[test]
    fn csr_is_denser_than_graph() {
        let g = gen::barabasi_albert(5_000, 3, 1);
        let csr = Csr::from_graph(&g);
        assert!(
            csr.heap_bytes() < g.heap_bytes(),
            "CSR ({}) should beat per-vertex layout ({})",
            csr.heap_bytes(),
            g.heap_bytes()
        );
    }
}
