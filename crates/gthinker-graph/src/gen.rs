//! Deterministic random-graph generators.
//!
//! The paper evaluates on real social/web graphs (Table II). Those files
//! are not available offline, so the benchmark harness generates
//! *stand-ins* with comparable structure: heavy-tailed degrees
//! ([`barabasi_albert`]), controllable density ([`gnp`], [`gnm`]) and
//! planted dense regions ([`plant_clique`]) so that maximum-clique
//! finding has a nontrivial answer. All generators are deterministic in
//! their seed.

use crate::graph::Graph;
use crate::ids::{Label, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::io;

/// The consumer side of a streaming generator: called once per edge as
/// it is produced. Sinks typically append to a file
/// ([`crate::load::EdgeFileWriter`]) or feed a compressed-graph build
/// directly — the generator itself holds no edge list.
pub type EdgeSink<'a> = &'a mut dyn FnMut(VertexId, VertexId) -> io::Result<()>;

/// Streaming Erdős–Rényi `G(n, p)` via geometric skipping: walks the
/// `n·(n−1)/2` edge slots in lexicographic order, jumping ahead by
/// geometrically distributed gaps. Working state is O(1) — two cursors
/// and the RNG — regardless of how many edges are emitted, so it scales
/// to 10⁸–10⁹ edges. Emits each edge exactly once as `(u, v)` with
/// `u < v`; identical edge sequence to [`gnp`] for the same seed.
/// Returns the number of edges emitted.
pub fn stream_gnp(n: usize, p: f64, seed: u64, sink: EdgeSink) -> io::Result<u64> {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut count = 0u64;
    if p <= 0.0 || n < 2 {
        return Ok(0);
    }
    if p >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                sink(VertexId(u as u32), VertexId(v as u32))?;
                count += 1;
            }
        }
        return Ok(count);
    }
    let log1mp = (1.0 - p).ln();
    let (mut u, mut v) = (0usize, 0usize);
    loop {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (r.ln() / log1mp).floor() as usize + 1;
        v += skip;
        while v >= n {
            u += 1;
            if u >= n - 1 {
                return Ok(count);
            }
            v = u + 1 + (v - n);
        }
        sink(VertexId(u as u32), VertexId(v as u32))?;
        count += 1;
    }
}

/// Erdős–Rényi `G(n, p)`: each of the `n·(n−1)/2` possible edges is
/// present independently with probability `p`. In-memory wrapper over
/// [`stream_gnp`].
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    let mut edges = Vec::new();
    stream_gnp(n, p, seed, &mut |u, v| {
        edges.push((u, v));
        Ok(())
    })
    .expect("in-memory sink cannot fail");
    Graph::from_edges(n, &edges)
}

/// `G(n, m)`: exactly `m` distinct random edges (or fewer when `m`
/// exceeds the number of available slots).
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(max_edges);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = if u < v { ((u as u64) << 32) | v as u64 } else { ((v as u64) << 32) | u as u64 };
        if seen.insert(key) {
            edges.push((VertexId(u), VertexId(v)));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Streaming Barabási–Albert preferential attachment. Edges are
/// emitted as they are created rather than collected; the required
/// working state is the endpoint multiset the model itself samples
/// from (two `u32`s per generated edge — inherent to BA, documented
/// here: at 10⁸ edges that is ~800 MB of *sampling state*, but still no
/// materialized edge list or graph). Identical edge sequence to
/// [`barabasi_albert`] for the same seed. Returns the edge count.
pub fn stream_barabasi_albert(n: usize, m: usize, seed: u64, sink: EdgeSink) -> io::Result<u64> {
    assert!(m >= 1, "each new vertex must attach at least one edge");
    assert!(n > m, "need more vertices than the attachment count");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut count = 0u64;
    // `endpoints` holds one entry per edge endpoint: sampling uniformly
    // from it is sampling proportionally to degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
    // Seed clique.
    for u in 0..=(m as u32) {
        for v in (u + 1)..=(m as u32) {
            sink(VertexId(u), VertexId(v))?;
            count += 1;
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let mut picked = std::collections::HashSet::with_capacity(m * 2);
    for new in (m as u32 + 1)..n as u32 {
        picked.clear();
        while picked.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            picked.insert(t);
        }
        // HashSet iteration order is randomized per process; sort so the
        // endpoint vector (and thus later sampling) is deterministic.
        let mut targets: Vec<u32> = picked.iter().copied().collect();
        targets.sort_unstable();
        for t in targets {
            sink(VertexId(new), VertexId(t))?;
            count += 1;
            endpoints.push(new);
            endpoints.push(t);
        }
    }
    Ok(count)
}

/// Barabási–Albert preferential attachment: starts from a clique of
/// `m + 1` vertices and attaches each new vertex to `m` existing
/// vertices chosen proportionally to degree. Produces the heavy-tailed
/// degree distribution typical of the social networks in Table II.
/// In-memory wrapper over [`stream_barabasi_albert`].
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * m);
    stream_barabasi_albert(n, m, seed, &mut |u, v| {
        edges.push((u, v));
        Ok(())
    })
    .expect("in-memory sink cannot fail");
    Graph::from_edges(n, &edges)
}

/// Plants a clique over `k` distinct random vertices of `g`, returning
/// the new graph and the (sorted) clique members. Guarantees the
/// maximum clique is at least `k`, giving MCF workloads a known target.
pub fn plant_clique(g: &Graph, k: usize, seed: u64) -> (Graph, Vec<VertexId>) {
    let n = g.num_vertices();
    assert!(k <= n, "cannot plant a clique larger than the graph");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<u32> = (0..n as u32).collect();
    ids.shuffle(&mut rng);
    let mut members: Vec<VertexId> = ids[..k].iter().copied().map(VertexId).collect();
    members.sort_unstable();
    let mut edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    for i in 0..k {
        for j in (i + 1)..k {
            edges.push((members[i], members[j]));
        }
    }
    (Graph::from_edges(n, &edges), members)
}

/// Streaming planted clique: samples `k` distinct members of `0..n`
/// (Floyd's algorithm, O(k) state — no n-length shuffle) and emits the
/// `k·(k−1)/2` clique edges. Combine with another streaming generator
/// writing to the same sink to plant a dense region in a huge graph;
/// downstream deduplication collapses any overlap with existing edges.
/// Returns the sorted members.
pub fn stream_planted_clique(
    n: usize,
    k: usize,
    seed: u64,
    sink: EdgeSink,
) -> io::Result<Vec<VertexId>> {
    assert!(k <= n, "cannot plant a clique larger than the graph");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = std::collections::HashSet::with_capacity(k);
    // Floyd: for j in n-k..n, pick t in [0, j]; if taken, use j itself.
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j as u64) as usize;
        if !chosen.insert(t as u32) {
            chosen.insert(j as u32);
        }
    }
    let mut members: Vec<VertexId> = chosen.into_iter().map(VertexId).collect();
    members.sort_unstable();
    for i in 0..k {
        for j in (i + 1)..k {
            sink(members[i], members[j])?;
        }
    }
    Ok(members)
}

/// Assigns each vertex a uniform random label from `0..num_labels`.
pub fn random_labels(g: Graph, num_labels: u16, seed: u64) -> Graph {
    assert!(num_labels >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let labels = (0..g.num_vertices()).map(|_| Label(rng.gen_range(0..num_labels))).collect();
    g.with_labels(labels)
}

/// Streaming R-MAT: emits up to `m` edge samples with O(1) working
/// state (just the RNG). Self-loops are skipped; **duplicate edges are
/// emitted as sampled** — downstream consumers (loaders, the
/// compressed-graph builder) deduplicate, matching how [`rmat`] relies
/// on [`Graph::from_edges`] to collapse them. Identical sample
/// sequence to [`rmat`] for the same seed. Returns the emitted count.
pub fn stream_rmat(
    scale: u32,
    m: usize,
    a: f64,
    b: f64,
    c: f64,
    seed: u64,
    sink: EdgeSink,
) -> io::Result<u64> {
    assert!((1..=28).contains(&scale), "2^scale vertices must be sane");
    assert!(a > 0.0 && b >= 0.0 && c >= 0.0 && a + b + c < 1.0, "bad quadrant probabilities");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut count = 0u64;
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            let r: f64 = rng.gen();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u != v {
            sink(VertexId(u as u32), VertexId(v as u32))?;
            count += 1;
        }
    }
    Ok(count)
}

/// R-MAT (recursive matrix / Kronecker-style) generator — the standard
/// synthetic model for skewed web/social graphs (used by Graph500).
/// Generates `m` edge samples over `2^scale` vertices by recursively
/// choosing quadrants with probabilities `(a, b, c, 1−a−b−c)`;
/// duplicates and self-loops collapse, so the edge count is ≤ `m`.
/// In-memory wrapper over [`stream_rmat`].
pub fn rmat(scale: u32, m: usize, a: f64, b: f64, c: f64, seed: u64) -> Graph {
    let n = 1usize << scale;
    let mut edges = Vec::with_capacity(m);
    stream_rmat(scale, m, a, b, c, seed, &mut |u, v| {
        edges.push((u, v));
        Ok(())
    })
    .expect("in-memory sink cannot fail");
    Graph::from_edges(n, &edges)
}

/// A complete graph `K_n` (every pair adjacent) — handy in tests.
pub fn complete(n: usize) -> Graph {
    gnp(n, 1.0, 0)
}

/// A cycle `C_n`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let edges: Vec<_> =
        (0..n).map(|i| (VertexId(i as u32), VertexId(((i + 1) % n) as u32))).collect();
    Graph::from_edges(n, &edges)
}

/// A star with `n - 1` leaves around vertex 0.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2);
    let edges: Vec<_> = (1..n).map(|i| (VertexId(0), VertexId(i as u32))).collect();
    Graph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_is_deterministic_in_seed() {
        let a = gnp(100, 0.05, 7);
        let b = gnp(100, 0.05, 7);
        let c = gnp(100, 0.05, 8);
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        assert_ne!(a.edges().collect::<Vec<_>>(), c.edges().collect::<Vec<_>>());
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let n = 400;
        let p = 0.1;
        let g = gnp(n, p, 42);
        let expected = (n * (n - 1) / 2) as f64 * p;
        let got = g.num_edges() as f64;
        assert!((got - expected).abs() < expected * 0.15, "got {got}, expected ~{expected}");
        g.validate_undirected().unwrap();
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(5, 1.0, 1).num_edges(), 10);
        assert_eq!(gnp(0, 0.5, 1).num_vertices(), 0);
        assert_eq!(gnp(1, 0.5, 1).num_edges(), 0);
    }

    #[test]
    fn gnm_produces_exact_count() {
        let g = gnm(50, 100, 3);
        assert_eq!(g.num_edges(), 100);
        g.validate_undirected().unwrap();
        // Saturating case.
        let g2 = gnm(4, 100, 3);
        assert_eq!(g2.num_edges(), 6);
    }

    #[test]
    fn barabasi_albert_shape() {
        let n = 500;
        let m = 3;
        let g = barabasi_albert(n, m, 11);
        assert_eq!(g.num_vertices(), n);
        // seed clique (m+1 choose 2) + (n - m - 1) * m edges, minus any
        // duplicate collapses (none expected since picks are distinct).
        let expect = (m + 1) * m / 2 + (n - m - 1) * m;
        assert_eq!(g.num_edges(), expect);
        g.validate_undirected().unwrap();
        // Heavy tail: max degree far above average.
        let max_deg = g.vertices().map(|v| g.degree(v)).max().unwrap();
        let avg = 2.0 * g.num_edges() as f64 / n as f64;
        assert!(max_deg as f64 > 3.0 * avg, "max {max_deg} vs avg {avg}");
    }

    #[test]
    fn rmat_is_skewed_and_deterministic() {
        let g = rmat(12, 30_000, 0.57, 0.19, 0.19, 5);
        assert_eq!(g.num_vertices(), 4096);
        assert!(g.num_edges() > 10_000);
        g.validate_undirected().unwrap();
        let s = crate::stats::GraphStats::of(&g);
        assert!(
            s.max_degree as f64 > 10.0 * s.avg_degree,
            "RMAT must be heavy-tailed: max {} avg {}",
            s.max_degree,
            s.avg_degree
        );
        let g2 = rmat(12, 30_000, 0.57, 0.19, 0.19, 5);
        assert_eq!(g.num_edges(), g2.num_edges());
        assert_ne!(g.num_edges(), rmat(12, 30_000, 0.57, 0.19, 0.19, 6).num_edges());
    }

    #[test]
    #[should_panic(expected = "quadrant")]
    fn rmat_rejects_bad_probabilities() {
        let _ = rmat(4, 10, 0.5, 0.3, 0.3, 1);
    }

    #[test]
    fn planted_clique_is_a_clique() {
        let base = gnp(200, 0.02, 5);
        let (g, members) = plant_clique(&base, 12, 6);
        assert_eq!(members.len(), 12);
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                assert!(g.has_edge(members[i], members[j]));
            }
        }
        g.validate_undirected().unwrap();
    }

    #[test]
    fn random_labels_within_range() {
        let g = random_labels(gnp(50, 0.1, 1), 4, 2);
        assert!(g.is_labeled());
        for v in g.vertices() {
            assert!(g.label(v).unwrap().value() < 4);
        }
    }

    #[test]
    fn streaming_generators_match_in_memory_twins() {
        // Same seed ⇒ byte-identical edge sequences.
        let collect = |f: &dyn Fn(EdgeSink) -> io::Result<u64>| {
            let mut edges = Vec::new();
            let n = f(&mut |u, v| {
                edges.push((u, v));
                Ok(())
            })
            .unwrap();
            assert_eq!(n as usize, edges.len());
            edges
        };
        let streamed = collect(&|s| stream_gnp(120, 0.07, 3, s));
        assert_eq!(
            Graph::from_edges(120, &streamed).edges().collect::<Vec<_>>(),
            gnp(120, 0.07, 3).edges().collect::<Vec<_>>()
        );

        let streamed = collect(&|s| stream_barabasi_albert(200, 3, 9, s));
        assert_eq!(
            Graph::from_edges(200, &streamed).edges().collect::<Vec<_>>(),
            barabasi_albert(200, 3, 9).edges().collect::<Vec<_>>()
        );

        let streamed = collect(&|s| stream_rmat(10, 5000, 0.57, 0.19, 0.19, 4, s));
        assert_eq!(
            Graph::from_edges(1 << 10, &streamed).edges().collect::<Vec<_>>(),
            rmat(10, 5000, 0.57, 0.19, 0.19, 4).edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn streaming_generators_replay_exactly() {
        // The compressed builder relies on two passes over the same
        // seed producing identical streams.
        for _ in 0..2 {
            let mut a = Vec::new();
            let mut b = Vec::new();
            stream_gnp(300, 0.02, 77, &mut |u, v| {
                a.push((u, v));
                Ok(())
            })
            .unwrap();
            stream_gnp(300, 0.02, 77, &mut |u, v| {
                b.push((u, v));
                Ok(())
            })
            .unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn stream_planted_clique_members_are_distinct_and_connected() {
        let mut edges = Vec::new();
        let members = stream_planted_clique(1000, 20, 5, &mut |u, v| {
            edges.push((u, v));
            Ok(())
        })
        .unwrap();
        assert_eq!(members.len(), 20);
        assert!(members.windows(2).all(|w| w[0] < w[1]), "members sorted + distinct");
        assert!(members.iter().all(|m| m.index() < 1000));
        assert_eq!(edges.len(), 20 * 19 / 2);
        // Determinism.
        let members2 = stream_planted_clique(1000, 20, 5, &mut |_, _| Ok(())).unwrap();
        assert_eq!(members, members2);
    }

    #[test]
    fn sink_errors_propagate() {
        let mut left = 3;
        let err = stream_gnp(100, 0.5, 1, &mut |_, _| {
            left -= 1;
            if left == 0 {
                Err(io::Error::other("disk full"))
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "disk full");
    }

    #[test]
    fn small_topologies() {
        assert_eq!(complete(4).num_edges(), 6);
        assert_eq!(cycle(5).num_edges(), 5);
        let s = star(6);
        assert_eq!(s.num_edges(), 5);
        assert_eq!(s.degree(VertexId(0)), 5);
    }
}
