//! A fast, non-cryptographic hasher and hash-container aliases.
//!
//! Subgraph mining hashes millions of small integer keys (vertex IDs,
//! task IDs). The standard library's SipHash is collision-resistant but
//! slow for this workload; the Rust Performance Book recommends an
//! FxHash-style multiply-xor hasher for integer keys. To stay within the
//! approved dependency set we implement that hasher here (~20 lines)
//! rather than pulling in `rustc-hash`.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style hasher: xor then multiply per word.
///
/// Not HashDoS-resistant; only use for internal keys that an adversary
/// cannot choose (vertex IDs, task IDs, bucket indices).
#[derive(Default, Clone)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with [`FastHasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuildHasher>;

/// A `HashSet` keyed with [`FastHasher`].
pub type FastSet<K> = std::collections::HashSet<K, FastBuildHasher>;

/// Creates an empty [`FastMap`] with at least `cap` capacity.
pub fn fast_map_with_capacity<K, V>(cap: usize) -> FastMap<K, V> {
    FastMap::with_capacity_and_hasher(cap, FastBuildHasher::default())
}

/// Creates an empty [`FastSet`] with at least `cap` capacity.
pub fn fast_set_with_capacity<K>(cap: usize) -> FastSet<K> {
    FastSet::with_capacity_and_hasher(cap, FastBuildHasher::default())
}

/// Hashes a single `u64` key; used for cache-bucket selection.
#[inline]
pub fn hash_u64(key: u64) -> u64 {
    let mut h = FastHasher::default();
    h.write_u64(key);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_input() {
        assert_eq!(hash_u64(12345), hash_u64(12345));
        assert_ne!(hash_u64(12345), hash_u64(12346));
    }

    #[test]
    fn map_and_set_work_as_containers() {
        let mut m: FastMap<u32, &str> = fast_map_with_capacity(4);
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        let mut s: FastSet<u32> = fast_set_with_capacity(4);
        s.insert(9);
        assert!(s.contains(&9));
        assert!(!s.contains(&8));
    }

    #[test]
    fn byte_stream_hashing_handles_remainders() {
        let mut h1 = FastHasher::default();
        h1.write(b"hello world!!");
        let mut h2 = FastHasher::default();
        h2.write(b"hello world!?");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn distribution_spreads_sequential_keys() {
        // Sequential vertex IDs must not collapse into few buckets.
        let k = 64;
        let mut counts = vec![0usize; k];
        for i in 0..64_000u64 {
            counts[(hash_u64(i) % k as u64) as usize] += 1;
        }
        let expect = 64_000 / k;
        for &c in &counts {
            assert!(c > expect / 2 && c < expect * 2, "skewed bucket: {c}");
        }
    }
}
