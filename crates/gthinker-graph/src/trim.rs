//! Adjacency-list trimming (the paper's `Trimmer` class, §IV item 7).
//!
//! Trimming runs once, right after graph loading, so that vertex pulls
//! only ship trimmed lists over the (simulated) network. Two built-in
//! trimmers match the paper's examples:
//!
//! * [`GreaterIdTrimmer`] — keep only `Γ_>(v)`, the neighbors with larger
//!   IDs, for set-enumeration-tree algorithms such as maximum clique and
//!   triangle counting.
//! * [`LabelSetTrimmer`] — drop neighbors whose labels do not appear in
//!   the query graph, for subgraph matching.

use crate::adj::AdjList;
use crate::graph::Graph;
use crate::ids::{Label, VertexId};

/// A user-definable pass that rewrites each vertex's adjacency list
/// right after loading.
pub trait Trimmer: Send + Sync {
    /// Rewrites `adj` for vertex `v` (whose label, if any, is `label`).
    fn trim(&self, v: VertexId, label: Option<Label>, adj: &mut AdjList);
}

/// Keeps only neighbors with IDs strictly greater than the owner —
/// `Γ(v) → Γ_>(v)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreaterIdTrimmer;

impl Trimmer for GreaterIdTrimmer {
    fn trim(&self, v: VertexId, _label: Option<Label>, adj: &mut AdjList) {
        let kept: Vec<VertexId> = adj.greater_than(v).to_vec();
        *adj = AdjList::from_sorted(kept);
    }
}

/// Drops neighbors whose label is not in the allowed set. Requires the
/// graph to be labeled; on unlabeled graphs it is a no-op.
#[derive(Clone, Debug)]
pub struct LabelSetTrimmer {
    allowed: Vec<bool>,
    labels: Vec<Label>,
}

impl LabelSetTrimmer {
    /// Builds a trimmer that keeps only neighbors labeled with one of
    /// `allowed`, given the full per-vertex label table of the data
    /// graph.
    pub fn new(allowed: &[Label], labels: Vec<Label>) -> Self {
        let max = allowed.iter().map(|l| l.value()).max().unwrap_or(0) as usize;
        let mut mask = vec![false; max + 1];
        for l in allowed {
            mask[l.value() as usize] = true;
        }
        LabelSetTrimmer { allowed: mask, labels }
    }

    fn keeps(&self, l: Label) -> bool {
        self.allowed.get(l.value() as usize).copied().unwrap_or(false)
    }
}

impl Trimmer for LabelSetTrimmer {
    fn trim(&self, _v: VertexId, _label: Option<Label>, adj: &mut AdjList) {
        if self.labels.is_empty() {
            return;
        }
        let labels = &self.labels;
        adj.retain(|u| self.keeps(labels[u.index()]));
    }
}

/// Applies a trimmer to every vertex of a graph, returning the trimmed
/// graph. Vertices whose own label is filtered keep their (possibly
/// empty) entry — tasks are simply never spawned from them.
pub fn trim_graph(g: &Graph, trimmer: &dyn Trimmer) -> Graph {
    let labels = g.labels().map(<[Label]>::to_vec);
    let adj: Vec<AdjList> = g
        .vertices()
        .map(|v| {
            let mut a = g.neighbors(v).clone();
            trimmer.trim(v, g.label(v), &mut a);
            a
        })
        .collect();
    let out = Graph::from_adjacency(adj);
    match labels {
        Some(l) => out.with_labels(l),
        None => out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn greater_id_trimmer_keeps_strict_suffix() {
        let g = gen::complete(5);
        let t = trim_graph(&g, &GreaterIdTrimmer);
        for v in t.vertices() {
            for u in t.neighbors(v).iter() {
                assert!(u > v);
            }
        }
        // Sum of trimmed degrees equals |E| exactly once per edge.
        let total: usize = t.vertices().map(|v| t.neighbors(v).degree()).sum();
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn label_trimmer_drops_disallowed_labels() {
        let g = gen::random_labels(gen::complete(30), 3, 9);
        let labels = g.labels().unwrap().to_vec();
        let t = LabelSetTrimmer::new(&[Label(0), Label(2)], labels);
        let trimmed = trim_graph(&g, &t);
        for v in trimmed.vertices() {
            for u in trimmed.neighbors(v).iter() {
                let l = trimmed.label(u).unwrap();
                assert!(l == Label(0) || l == Label(2), "kept neighbor with label {l}");
            }
        }
    }

    #[test]
    fn label_trimmer_is_noop_without_label_table() {
        let g = gen::complete(4);
        let t = LabelSetTrimmer::new(&[Label(1)], Vec::new());
        let trimmed = trim_graph(&g, &t);
        assert_eq!(trimmed.num_edges(), g.num_edges());
    }

    #[test]
    fn trimming_preserves_label_table() {
        let g = gen::random_labels(gen::cycle(6), 2, 3);
        let t = trim_graph(&g, &GreaterIdTrimmer);
        assert!(t.is_labeled());
        for v in g.vertices() {
            assert_eq!(g.label(v), t.label(v));
        }
    }
}
