//! The `GTCGRF01` compressed on-disk graph format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ header (32 B): magic "GTCGRF01" | n u64 | m u64              │
//! │                flags u8 (bit0 = labeled)                     │
//! │                offset_width u8 (4 or 8) | 6 reserved zeros   │
//! ├──────────────────────────────────────────────────────────────┤
//! │ offset index: (n+1) × offset_width bytes, payload-relative,  │
//! │               offsets[0] = 0, monotone, offsets[n] = |P|     │
//! ├──────────────────────────────────────────────────────────────┤
//! │ payload P: per-vertex record for v = 0..n                    │
//! │   varint(degree)                                             │
//! │   varint(zigzag(first − v))          (if degree > 0)         │
//! │   (degree−1) × varint(gap − 1)                               │
//! ├──────────────────────────────────────────────────────────────┤
//! │ labels: n × u16 (only if flags bit0)                         │
//! ├──────────────────────────────────────────────────────────────┤
//! │ trailer: CRC32 (u32) of every byte above                     │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! [`CompressedGraph::open`] memory-maps the file, verifies the CRC and
//! the offset index once (one sequential pass), and thereafter decodes
//! single adjacency lists on demand — the per-vertex record boundary is
//! `payload[offsets[v]..offsets[v+1]]`, so a lookup touches only the
//! pages holding that record. The offset index is fixed-stride on
//! purpose: `offsets[v]` is one mapped read, no auxiliary RAM structure.
//!
//! [`StreamBuilder`] writes the format without ever holding the whole
//! graph: records stream to a temp file while the (n+1)-entry offset
//! table accumulates in RAM, then header/offsets/payload/labels are
//! concatenated through a CRC-tracking writer.

use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::adj::AdjList;
use crate::crc::{crc32, Crc32Writer};
use crate::graph::Graph;
use crate::ids::{Label, VertexId};
use crate::mmap::{Advice, Backing};
use crate::vbyte::{decode_adjacency_exact, encode_adjacency, read_varint};

/// File magic: format name + version in 8 bytes.
pub const MAGIC: &[u8; 8] = b"GTCGRF01";
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 32;
const FLAG_LABELED: u8 = 0b0000_0001;

fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Summary returned by the writers, consumed by `graph build`/`stats`
/// and the storage bench.
#[derive(Clone, Copy, Debug)]
pub struct CompressedStats {
    pub num_vertices: u64,
    pub num_edges: u64,
    pub payload_bytes: u64,
    pub file_bytes: u64,
    pub offset_width: u8,
    pub labeled: bool,
}

impl CompressedStats {
    /// Mean encoded bytes per directed edge (payload only).
    pub fn bytes_per_edge(&self) -> f64 {
        if self.num_edges == 0 {
            return 0.0;
        }
        self.payload_bytes as f64 / (2.0 * self.num_edges as f64)
    }
}

/// Streams a graph into the compressed format vertex-by-vertex.
///
/// `push` must be called exactly once per vertex in ascending ID order
/// with that vertex's sorted adjacency; `finish` assembles the final
/// file. Peak memory is the offset table (`(n+1) × 8` bytes) plus I/O
/// buffers — independent of edge count.
pub struct StreamBuilder {
    out_path: PathBuf,
    tmp_path: PathBuf,
    payload: BufWriter<std::fs::File>,
    offsets: Vec<u64>,
    payload_len: u64,
    degree_sum: u64,
    n: u64,
    labels: Option<Vec<Label>>,
    record: Vec<u8>,
}

impl StreamBuilder {
    /// Starts a build of an `n`-vertex graph at `path`. `labels`, when
    /// given, must hold one entry per vertex.
    pub fn new(path: &Path, n: u64, labels: Option<Vec<Label>>) -> io::Result<StreamBuilder> {
        if let Some(ls) = &labels {
            if ls.len() as u64 != n {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("{} labels for {n} vertices", ls.len()),
                ));
            }
        }
        let tmp_path = path.with_extension("payload.tmp");
        let payload = BufWriter::new(std::fs::File::create(&tmp_path)?);
        let mut offsets = Vec::with_capacity(n as usize + 1);
        offsets.push(0);
        Ok(StreamBuilder {
            out_path: path.to_path_buf(),
            tmp_path,
            payload,
            offsets,
            payload_len: 0,
            degree_sum: 0,
            n,
            labels,
            record: Vec::new(),
        })
    }

    /// Appends the record for the next vertex (IDs are implicit and
    /// ascending: the k-th call encodes vertex k−1).
    pub fn push(&mut self, neighbors: &[VertexId]) -> io::Result<()> {
        let v = self.offsets.len() as u64 - 1;
        if v >= self.n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("push for vertex {v} beyond declared n = {}", self.n),
            ));
        }
        self.record.clear();
        encode_adjacency(VertexId(v as u32), neighbors, &mut self.record);
        self.payload.write_all(&self.record)?;
        self.payload_len += self.record.len() as u64;
        self.degree_sum += neighbors.len() as u64;
        self.offsets.push(self.payload_len);
        Ok(())
    }

    /// Assembles header | offsets | payload | labels | CRC into the
    /// output file and removes the temp payload.
    pub fn finish(self) -> io::Result<CompressedStats> {
        let StreamBuilder {
            out_path,
            tmp_path,
            payload,
            offsets,
            payload_len,
            degree_sum,
            n,
            labels,
            ..
        } = self;
        if offsets.len() as u64 != n + 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("only {} of {n} vertices pushed", offsets.len() - 1),
            ));
        }
        payload.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        let m = degree_sum / 2;
        let offset_width: u8 = if payload_len <= u64::from(u32::MAX) { 4 } else { 8 };

        let mut out = Crc32Writer::new(BufWriter::new(std::fs::File::create(&out_path)?));
        out.write_all(MAGIC)?;
        out.write_all(&n.to_le_bytes())?;
        out.write_all(&m.to_le_bytes())?;
        let flags = if labels.is_some() { FLAG_LABELED } else { 0 };
        out.write_all(&[flags, offset_width, 0, 0, 0, 0, 0, 0])?;
        for &off in &offsets {
            if offset_width == 4 {
                out.write_all(&(off as u32).to_le_bytes())?;
            } else {
                out.write_all(&off.to_le_bytes())?;
            }
        }
        let mut src = std::fs::File::open(&tmp_path)?;
        let mut buf = vec![0u8; 1 << 20];
        loop {
            let got = src.read(&mut buf)?;
            if got == 0 {
                break;
            }
            out.write_all(&buf[..got])?;
        }
        if let Some(ls) = &labels {
            for l in ls {
                out.write_all(&l.0.to_le_bytes())?;
            }
        }
        let crc = out.crc();
        let body_bytes = out.bytes_written();
        let mut inner = out.into_inner();
        inner.write_all(&crc.to_le_bytes())?;
        inner.flush()?;
        inner.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        let _ = std::fs::remove_file(&tmp_path);
        Ok(CompressedStats {
            num_vertices: n,
            num_edges: m,
            payload_bytes: payload_len,
            file_bytes: body_bytes + 4,
            offset_width,
            labeled: labels.is_some(),
        })
    }
}

/// Builds a compressed graph at `path` from a **replayable** edge
/// stream, without ever materializing the edge list: `stream` is
/// invoked twice (degree-counting pass, then fill pass) and must emit
/// the same edges both times — re-reading a file or re-running a seeded
/// generator both qualify. Self-loops are dropped and duplicate edges
/// collapse, matching the loaders' policy.
///
/// Peak memory is the CSR fill state — 4 bytes per directed edge plus
/// ~16 bytes per vertex — independent of the source representation
/// (a 10⁸-edge build peaks under 1 GB where the text edge list alone
/// would exceed that and an `AdjList`-of-`Vec`s graph several times it).
///
/// `n_hint` raises the vertex count above `max id + 1` (for trailing
/// isolated vertices); `labels`, when given, fixes it exactly.
pub fn build_from_edge_stream<F>(
    path: &Path,
    n_hint: u64,
    labels: Option<Vec<Label>>,
    mut stream: F,
) -> io::Result<CompressedStats>
where
    F: FnMut(&mut dyn FnMut(VertexId, VertexId) -> io::Result<()>) -> io::Result<()>,
{
    // Pass 1: directed degree counts (self-loops excluded).
    let mut counts: Vec<u32> = Vec::new();
    stream(&mut |u, v| {
        if u == v {
            return Ok(());
        }
        let hi = u.index().max(v.index());
        if hi >= counts.len() {
            counts.resize(hi + 1, 0);
        }
        counts[u.index()] += 1;
        counts[v.index()] += 1;
        Ok(())
    })?;
    if (n_hint as usize) > counts.len() {
        counts.resize(n_hint as usize, 0);
    }
    if let Some(ls) = &labels {
        if ls.len() < counts.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{} labels but the stream names vertex {}", ls.len(), counts.len() - 1),
            ));
        }
        counts.resize(ls.len(), 0);
    }
    let n = counts.len();
    let mut offsets: Vec<u64> = Vec::with_capacity(n + 1);
    let mut total = 0u64;
    offsets.push(0);
    for &c in &counts {
        total += u64::from(c);
        offsets.push(total);
    }
    drop(counts);

    // Pass 2: CSR fill. `cursor` walks each vertex's window.
    let mut targets: Vec<u32> = vec![0; total as usize];
    let mut cursor: Vec<u64> = offsets[..n].to_vec();
    stream(&mut |u, v| {
        if u == v {
            return Ok(());
        }
        if u.index() >= n || v.index() >= n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "edge stream changed between passes (new vertex in pass 2)",
            ));
        }
        if cursor[u.index()] >= offsets[u.index() + 1]
            || cursor[v.index()] >= offsets[v.index() + 1]
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "edge stream changed between passes (extra edge in pass 2)",
            ));
        }
        targets[cursor[u.index()] as usize] = v.0;
        cursor[u.index()] += 1;
        targets[cursor[v.index()] as usize] = u.0;
        cursor[v.index()] += 1;
        Ok(())
    })?;
    for v in 0..n {
        if cursor[v] != offsets[v + 1] {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "edge stream changed between passes (count mismatch)",
            ));
        }
    }
    drop(cursor);

    // Sort + dedup each window and stream records out.
    let mut builder = StreamBuilder::new(path, n as u64, labels)?;
    let mut scratch: Vec<VertexId> = Vec::new();
    for v in 0..n {
        let window = &mut targets[offsets[v] as usize..offsets[v + 1] as usize];
        window.sort_unstable();
        scratch.clear();
        for &t in window.iter() {
            if scratch.last().is_none_or(|&last| last.0 != t) {
                scratch.push(VertexId(t));
            }
        }
        builder.push(&scratch)?;
    }
    builder.finish()
}

/// Compresses an in-memory [`Graph`] to `path`.
pub fn write_compressed(g: &Graph, path: &Path) -> io::Result<CompressedStats> {
    let mut b = StreamBuilder::new(path, g.num_vertices() as u64, g.labels().map(<[_]>::to_vec))?;
    for v in g.vertices() {
        b.push(g.neighbors(v).as_slice())?;
    }
    b.finish()
}

/// A read-only compressed graph, usually backed by a memory mapping.
///
/// Construction validates the whole file (CRC, header consistency,
/// offset monotonicity and bounds); per-vertex decoding afterwards
/// cannot read out of bounds.
pub struct CompressedGraph {
    backing: Backing,
    n: usize,
    m: u64,
    labeled: bool,
    offset_width: usize,
    payload_start: usize,
    payload_len: usize,
    labels_start: usize,
}

impl std::fmt::Debug for CompressedGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressedGraph")
            .field("n", &self.n)
            .field("m", &self.m)
            .field("labeled", &self.labeled)
            .field("payload_len", &self.payload_len)
            .field("mapped", &matches!(self.backing, Backing::Mapped(_)))
            .finish()
    }
}

impl CompressedGraph {
    /// Memory-maps and validates the file at `path`.
    pub fn open(path: &Path) -> io::Result<CompressedGraph> {
        let backing = Backing::map_file(path)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
        if let Backing::Mapped(region) = &backing {
            // The validation pass below reads front-to-back.
            region.advise(Advice::Sequential);
        }
        let g = Self::from_backing(backing)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
        if let Backing::Mapped(region) = &g.backing {
            // Steady state is point lookups into the payload.
            region.advise(Advice::Random);
        }
        Ok(g)
    }

    /// Builds from an in-memory byte buffer (tests, non-unix fallback).
    pub fn from_bytes(bytes: Vec<u8>) -> io::Result<CompressedGraph> {
        Self::from_backing(Backing::Owned(bytes))
    }

    fn from_backing(backing: Backing) -> io::Result<CompressedGraph> {
        let data = backing.as_slice();
        if data.len() < HEADER_LEN + 4 {
            return Err(corrupt(format!("file too short ({} bytes) for a header", data.len())));
        }
        if &data[..8] != MAGIC {
            return Err(corrupt("bad magic: not a GTCGRF01 compressed graph"));
        }
        let stored_crc = u32::from_le_bytes(data[data.len() - 4..].try_into().unwrap());
        let actual_crc = crc32(&data[..data.len() - 4]);
        if stored_crc != actual_crc {
            return Err(corrupt(format!(
                "CRC mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
            )));
        }
        let n64 = u64::from_le_bytes(data[8..16].try_into().unwrap());
        let m = u64::from_le_bytes(data[16..24].try_into().unwrap());
        let flags = data[24];
        let offset_width = data[25] as usize;
        if flags & !FLAG_LABELED != 0 {
            return Err(corrupt(format!("unknown flag bits {flags:#04x}")));
        }
        if offset_width != 4 && offset_width != 8 {
            return Err(corrupt(format!("offset width {offset_width} (must be 4 or 8)")));
        }
        if n64 > u64::from(u32::MAX) {
            return Err(corrupt(format!("{n64} vertices exceed the u32 ID domain")));
        }
        let n = n64 as usize;
        let labeled = flags & FLAG_LABELED != 0;

        let offsets_len = (n as u64 + 1)
            .checked_mul(offset_width as u64)
            .ok_or_else(|| corrupt("offset table size overflow"))?;
        let labels_len = if labeled { n as u64 * 2 } else { 0 };
        let fixed = HEADER_LEN as u64 + offsets_len + labels_len + 4;
        let payload_len = (data.len() as u64)
            .checked_sub(fixed)
            .ok_or_else(|| corrupt("file too short for its own offset/label tables"))?
            as usize;
        let payload_start = HEADER_LEN + offsets_len as usize;
        let labels_start = payload_start + payload_len;

        let g = CompressedGraph {
            backing,
            n,
            m,
            labeled,
            offset_width,
            payload_start,
            payload_len,
            labels_start,
        };
        // Monotone offsets ending exactly at the payload boundary mean
        // every record window is in bounds forever after.
        let mut prev = g.offset(0);
        if prev != 0 {
            return Err(corrupt("offsets[0] must be 0"));
        }
        for v in 1..=n {
            let cur = g.offset(v);
            if cur < prev {
                return Err(corrupt(format!("offset index not monotone at vertex {v}")));
            }
            prev = cur;
        }
        if prev != payload_len as u64 {
            return Err(corrupt(format!(
                "offsets end at {prev} but payload is {payload_len} bytes"
            )));
        }
        Ok(g)
    }

    #[inline]
    fn offset(&self, v: usize) -> u64 {
        let data = self.backing.as_slice();
        let at = HEADER_LEN + v * self.offset_width;
        if self.offset_width == 4 {
            u64::from(u32::from_le_bytes(data[at..at + 4].try_into().unwrap()))
        } else {
            u64::from_le_bytes(data[at..at + 8].try_into().unwrap())
        }
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of undirected edges `|E|` (from the header).
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.m
    }

    /// True if the file carries per-vertex labels.
    pub fn is_labeled(&self) -> bool {
        self.labeled
    }

    /// Decodes `Γ(v)`. Errors only on a corrupt record, which the
    /// open-time CRC makes practically unreachable.
    pub fn try_adjacency(&self, v: VertexId) -> io::Result<AdjList> {
        if v.index() >= self.n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("vertex {v} out of range (n = {})", self.n),
            ));
        }
        let start = self.payload_start + self.offset(v.index()) as usize;
        let end = self.payload_start + self.offset(v.index() + 1) as usize;
        decode_adjacency_exact(v, self.backing.as_slice(), start, end)
            .map(AdjList::from_sorted)
            .map_err(|e| corrupt(format!("vertex {v}: {e}")))
    }

    /// Decodes `Γ(v)`, panicking on corruption (which open-time
    /// validation rules out for any file that parsed successfully).
    #[inline]
    pub fn adjacency(&self, v: VertexId) -> AdjList {
        self.try_adjacency(v).expect("record validated by open-time CRC")
    }

    /// Degree of `v` without decoding the neighbor list (reads only the
    /// leading varint of the record).
    pub fn degree(&self, v: VertexId) -> usize {
        assert!(v.index() < self.n, "vertex {v} out of range (n = {})", self.n);
        let start = self.payload_start + self.offset(v.index()) as usize;
        let end = self.payload_start + self.offset(v.index() + 1) as usize;
        let mut pos = start;
        read_varint(&self.backing.as_slice()[..end], &mut pos)
            .expect("record validated by open-time CRC") as usize
    }

    /// Iterates degrees for `v = 0..n` (cheap: one varint per vertex).
    pub fn degrees(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n as u32).map(move |v| self.degree(VertexId(v)))
    }

    /// The label of `v`, if the file is labeled.
    pub fn label(&self, v: VertexId) -> Option<Label> {
        if !self.labeled {
            return None;
        }
        assert!(v.index() < self.n, "vertex {v} out of range (n = {})", self.n);
        let at = self.labels_start + v.index() * 2;
        let data = self.backing.as_slice();
        Some(Label(u16::from_le_bytes(data[at..at + 2].try_into().unwrap())))
    }

    /// All labels as an owned vector, if labeled.
    pub fn labels(&self) -> Option<Vec<Label>> {
        if !self.labeled {
            return None;
        }
        Some((0..self.n as u32).map(|v| self.label(VertexId(v)).unwrap()).collect())
    }

    /// Total file size in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.backing.as_slice().len() as u64
    }

    /// Encoded payload size in bytes (excludes header/offsets/labels).
    pub fn payload_bytes(&self) -> u64 {
        self.payload_len as u64
    }

    /// Heap bytes held by this structure. Near zero when mapped — the
    /// decoded working set lives in the page cache and in whatever the
    /// caller retains.
    pub fn heap_bytes(&self) -> usize {
        self.backing.heap_bytes() + std::mem::size_of::<Self>()
    }

    /// Fully decodes into an in-memory [`Graph`] (tests, small inputs).
    pub fn to_graph(&self) -> Graph {
        let adj = (0..self.n as u32).map(|v| self.adjacency(VertexId(v))).collect();
        let g = Graph::from_adjacency(adj);
        match self.labels() {
            Some(ls) => g.with_labels(ls),
            None => g,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gthinker-gtc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn assert_same(g: &Graph, c: &CompressedGraph) {
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_edges() as usize, g.num_edges());
        assert_eq!(c.is_labeled(), g.is_labeled());
        for v in g.vertices() {
            assert_eq!(c.adjacency(v).as_slice(), g.neighbors(v).as_slice(), "Γ({v})");
            assert_eq!(c.degree(v), g.degree(v), "deg({v})");
            assert_eq!(c.label(v), g.label(v), "label({v})");
        }
    }

    #[test]
    fn round_trips_a_random_graph_via_file() {
        let g = gen::gnp(500, 0.05, 42);
        let path = tmp("gnp.gtc");
        let stats = write_compressed(&g, &path).unwrap();
        assert_eq!(stats.num_edges as usize, g.num_edges());
        assert_eq!(stats.offset_width, 4);
        assert_eq!(stats.file_bytes, std::fs::metadata(&path).unwrap().len());
        let c = CompressedGraph::open(&path).unwrap();
        assert_same(&g, &c);
        assert_eq!(c.heap_bytes(), std::mem::size_of::<CompressedGraph>());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn round_trips_labels_and_isolated_vertices() {
        let mut g = gen::gnp(80, 0.1, 7);
        // Append isolated vertices by rebuilding with a larger n.
        let edges: Vec<_> = g.edges().collect();
        g = gen::random_labels(Graph::from_edges(100, &edges), 4, 3);
        let path = tmp("labeled.gtc");
        write_compressed(&g, &path).unwrap();
        let c = CompressedGraph::open(&path).unwrap();
        assert_same(&g, &c);
        assert_eq!(c.labels().unwrap().len(), 100);
        let back = c.to_graph();
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(back.labels(), g.labels());
        for v in g.vertices() {
            assert_eq!(back.neighbors(v).as_slice(), g.neighbors(v).as_slice());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::with_vertices(0);
        let path = tmp("empty.gtc");
        write_compressed(&g, &path).unwrap();
        let c = CompressedGraph::open(&path).unwrap();
        assert_eq!(c.num_vertices(), 0);
        assert_eq!(c.num_edges(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn byte_flips_anywhere_are_detected() {
        let g = gen::gnp(60, 0.1, 3);
        let path = tmp("flip.gtc");
        write_compressed(&g, &path).unwrap();
        let clean = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        let step = (clean.len() / 37).max(1);
        for at in (0..clean.len()).step_by(step) {
            let mut bad = clean.clone();
            bad[at] ^= 0x40;
            assert!(CompressedGraph::from_bytes(bad).is_err(), "flip at byte {at} went undetected");
        }
    }

    #[test]
    fn truncations_are_clean_errors() {
        let g = gen::gnp(60, 0.1, 3);
        let path = tmp("trunc.gtc");
        write_compressed(&g, &path).unwrap();
        let clean = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        for cut in [0, 1, HEADER_LEN - 1, HEADER_LEN, clean.len() / 2, clean.len() - 1] {
            assert!(
                CompressedGraph::from_bytes(clean[..cut].to_vec()).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn stream_builder_enforces_vertex_count() {
        let path = tmp("short.gtc");
        let mut b = StreamBuilder::new(&path, 3, None).unwrap();
        b.push(&[]).unwrap();
        assert!(b.finish().is_err(), "finishing with missing vertices must fail");

        let mut b = StreamBuilder::new(&path, 1, None).unwrap();
        b.push(&[]).unwrap();
        assert!(b.push(&[]).is_err(), "pushing past n must fail");
    }

    #[test]
    fn edge_stream_build_matches_in_memory_build() {
        // gnp streamed twice (replayable by seed) must yield the same
        // file contents as compressing the materialized graph.
        let (n, p, seed) = (400usize, 0.03, 21u64);
        let streamed = tmp("streamed.gtc");
        build_from_edge_stream(&streamed, n as u64, None, |sink| {
            gen::stream_gnp(n, p, seed, sink).map(|_| ())
        })
        .unwrap();
        let direct = tmp("direct.gtc");
        write_compressed(&gen::gnp(n, p, seed), &direct).unwrap();
        assert_eq!(std::fs::read(&streamed).unwrap(), std::fs::read(&direct).unwrap());
        std::fs::remove_file(&streamed).unwrap();
        std::fs::remove_file(&direct).unwrap();
    }

    #[test]
    fn edge_stream_build_dedups_and_drops_self_loops() {
        let edges = [(0u32, 1u32), (1, 0), (2, 2), (1, 2), (1, 2)];
        let path = tmp("messy.gtc");
        build_from_edge_stream(&path, 0, None, |sink| {
            for &(u, v) in &edges {
                sink(VertexId(u), VertexId(v))?;
            }
            Ok(())
        })
        .unwrap();
        let c = CompressedGraph::open(&path).unwrap();
        assert_eq!(c.num_vertices(), 3);
        assert_eq!(c.num_edges(), 2); // 0-1 and 1-2, loops/dups gone
        assert_eq!(c.adjacency(VertexId(1)).as_slice(), &[VertexId(0), VertexId(2)]);
        assert_eq!(c.adjacency(VertexId(2)).as_slice(), &[VertexId(1)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_replayable_stream_is_detected() {
        let path = tmp("flaky.gtc");
        let mut pass = 0;
        let err = build_from_edge_stream(&path, 0, None, |sink| {
            pass += 1;
            if pass == 1 {
                sink(VertexId(0), VertexId(1))?;
            }
            sink(VertexId(0), VertexId(2))?;
            Ok(())
        })
        .unwrap_err();
        assert!(err.to_string().contains("between passes"), "{err}");
    }

    #[test]
    fn not_a_graph_file_is_rejected() {
        let err = CompressedGraph::from_bytes(b"definitely not a graph file at all".to_vec())
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
