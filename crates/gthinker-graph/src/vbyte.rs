//! Variable-byte integer codes and the delta-gap adjacency codec.
//!
//! The compressed graph format ([`crate::compressed`]) stores each
//! sorted adjacency list `Γ(v)` WebGraph-style: the first neighbor as a
//! zig-zagged delta from `v` itself, every further neighbor as the gap
//! to its predecessor minus one (lists are strictly ascending, so gaps
//! are ≥ 1 and the `-1` saves a bit of entropy). All values are LEB128
//! variable-byte integers — byte-aligned rather than the bit-aligned
//! ζ codes of WebGraph proper, trading a few percent of ratio for a
//! decode loop that is a handful of instructions per neighbor.
//!
//! Every read is bounds-checked and returns a typed [`VbyteError`]; a
//! truncated or corrupt buffer can never panic or read out of bounds.

use crate::ids::VertexId;

/// Decode failure: the buffer does not hold the value it claims to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VbyteError {
    /// The buffer ended in the middle of a value.
    Truncated,
    /// A varint ran past 10 bytes (would overflow u64).
    Overlong,
    /// A decoded neighbor ID does not fit in a `u32` vertex ID.
    IdOverflow,
    /// The record's encoded bytes did not match its declared degree.
    LengthMismatch,
}

impl std::fmt::Display for VbyteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VbyteError::Truncated => write!(f, "truncated varint"),
            VbyteError::Overlong => write!(f, "overlong varint (>10 bytes)"),
            VbyteError::IdOverflow => write!(f, "decoded vertex ID exceeds u32"),
            VbyteError::LengthMismatch => write!(f, "adjacency record length mismatch"),
        }
    }
}

impl std::error::Error for VbyteError {}

/// Appends `value` as a LEB128 varint (7 payload bits per byte, high
/// bit = continuation).
#[inline]
pub fn write_varint(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from `buf` starting at `*pos`, advancing
/// `*pos` past it.
#[inline]
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, VbyteError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos).ok_or(VbyteError::Truncated)?;
        *pos += 1;
        if shift >= 63 && byte > 1 {
            return Err(VbyteError::Overlong);
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(VbyteError::Overlong);
        }
    }
}

/// Number of bytes [`write_varint`] emits for `value`.
#[inline]
pub fn varint_len(value: u64) -> usize {
    (64 - value.max(1).leading_zeros() as usize).div_ceil(7)
}

/// Maps a signed delta onto an unsigned code (0, -1, 1, -2, 2, ...).
#[inline]
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(code: u64) -> i64 {
    ((code >> 1) as i64) ^ -((code & 1) as i64)
}

/// Encodes the sorted adjacency list of vertex `v` into `out`.
///
/// Layout: `varint(degree)`, then for non-empty lists
/// `varint(zigzag(first − v))` followed by `degree − 1` gap codes
/// `varint(gap − 1)`. The caller guarantees `neighbors` is strictly
/// ascending (debug-asserted).
pub fn encode_adjacency(v: VertexId, neighbors: &[VertexId], out: &mut Vec<u8>) {
    debug_assert!(
        neighbors.windows(2).all(|w| w[0] < w[1]),
        "adjacency of {v} must be strictly ascending"
    );
    write_varint(neighbors.len() as u64, out);
    let Some(&first) = neighbors.first() else { return };
    write_varint(zigzag(i64::from(first.0) - i64::from(v.0)), out);
    let mut prev = first.0;
    for &u in &neighbors[1..] {
        write_varint(u64::from(u.0 - prev) - 1, out);
        prev = u.0;
    }
}

/// Decodes one adjacency record from `buf` at `*pos` into `out`
/// (cleared first), advancing `*pos` past the record.
///
/// The output is strictly ascending by construction; IDs are checked
/// against the `u32` vertex-ID domain.
pub fn decode_adjacency_into(
    v: VertexId,
    buf: &[u8],
    pos: &mut usize,
    out: &mut Vec<VertexId>,
) -> Result<(), VbyteError> {
    out.clear();
    let degree = read_varint(buf, pos)?;
    if degree == 0 {
        return Ok(());
    }
    // A degree beyond the ID domain cannot be valid; refuse before
    // reserving memory for it.
    if degree > u64::from(u32::MAX) {
        return Err(VbyteError::IdOverflow);
    }
    out.reserve(degree as usize);
    let first = i64::from(v.0) + unzigzag(read_varint(buf, pos)?);
    if first < 0 || first > i64::from(u32::MAX) {
        return Err(VbyteError::IdOverflow);
    }
    let mut prev = first as u64;
    out.push(VertexId(prev as u32));
    for _ in 1..degree {
        prev = prev
            .checked_add(read_varint(buf, pos)?)
            .and_then(|p| p.checked_add(1))
            .ok_or(VbyteError::IdOverflow)?;
        if prev > u64::from(u32::MAX) {
            return Err(VbyteError::IdOverflow);
        }
        out.push(VertexId(prev as u32));
    }
    Ok(())
}

/// Decodes one adjacency record that must span exactly `buf[start..end]`
/// (the offset index pins record boundaries, so any slack is corruption).
pub fn decode_adjacency_exact(
    v: VertexId,
    buf: &[u8],
    start: usize,
    end: usize,
) -> Result<Vec<VertexId>, VbyteError> {
    let slice = buf.get(start..end).ok_or(VbyteError::Truncated)?;
    let mut out = Vec::new();
    let mut pos = 0usize;
    decode_adjacency_into(v, slice, &mut pos, &mut out)?;
    if pos != slice.len() {
        return Err(VbyteError::LengthMismatch);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<VertexId> {
        v.iter().map(|&x| VertexId(x)).collect()
    }

    fn round_trip(v: u32, nbrs: &[u32]) {
        let nbrs = ids(nbrs);
        let mut buf = Vec::new();
        encode_adjacency(VertexId(v), &nbrs, &mut buf);
        let back = decode_adjacency_exact(VertexId(v), &buf, 0, buf.len()).unwrap();
        assert_eq!(back, nbrs, "round trip of Γ({v})");
    }

    #[test]
    fn varint_round_trips_boundaries() {
        for value in [0u64, 1, 127, 128, 16_383, 16_384, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            write_varint(value, &mut buf);
            assert_eq!(buf.len(), varint_len(value), "length of {value}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), value);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 2, -2, i64::from(i32::MAX), i64::from(i32::MIN), -12345] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn adjacency_round_trips() {
        round_trip(5, &[]);
        round_trip(0, &[0]); // self-reference is representable (delta 0)
        round_trip(7, &[3]); // first neighbor below v (negative delta)
        round_trip(7, &[900]); // first neighbor far above v
        round_trip(2, &[0, 1, 3, 4, 5, 1000, u32::MAX]); // max-gap edge
        round_trip(u32::MAX, &[0, u32::MAX - 1]);
    }

    #[test]
    fn truncated_record_is_a_clean_error() {
        let nbrs = ids(&[10, 20, 30_000]);
        let mut buf = Vec::new();
        encode_adjacency(VertexId(1), &nbrs, &mut buf);
        for cut in 0..buf.len() {
            let err = decode_adjacency_exact(VertexId(1), &buf, 0, cut);
            assert!(err.is_err(), "cut at {cut} must fail");
        }
        // Out-of-range window.
        assert_eq!(
            decode_adjacency_exact(VertexId(1), &buf, 0, buf.len() + 1),
            Err(VbyteError::Truncated)
        );
    }

    #[test]
    fn trailing_bytes_are_length_mismatch() {
        let mut buf = Vec::new();
        encode_adjacency(VertexId(0), &ids(&[4]), &mut buf);
        buf.push(0);
        assert_eq!(
            decode_adjacency_exact(VertexId(0), &buf, 0, buf.len()),
            Err(VbyteError::LengthMismatch)
        );
    }

    #[test]
    fn overlong_varint_rejected() {
        let buf = [0xff; 11];
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), Err(VbyteError::Overlong));
    }

    #[test]
    fn id_overflow_rejected() {
        // degree 2, first = 0, gap pushes past u32::MAX.
        let mut buf = Vec::new();
        write_varint(2, &mut buf);
        write_varint(zigzag(0), &mut buf);
        write_varint(u64::from(u32::MAX) + 5, &mut buf);
        assert_eq!(
            decode_adjacency_exact(VertexId(0), &buf, 0, buf.len()),
            Err(VbyteError::IdOverflow)
        );
        // Negative first neighbor.
        let mut buf = Vec::new();
        write_varint(1, &mut buf);
        write_varint(zigzag(-1), &mut buf);
        assert_eq!(
            decode_adjacency_exact(VertexId(0), &buf, 0, buf.len()),
            Err(VbyteError::IdOverflow)
        );
    }
}
