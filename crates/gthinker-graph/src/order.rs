//! Vertex orderings, in particular **degeneracy ordering**.
//!
//! §VI of the paper observes that MCF performance "really depends on
//! how vertices are ordered in the input file": the set-enumeration
//! tree is anchored on vertex IDs, so a good ordering makes `Γ_>`
//! candidate sets small and uniform. Degeneracy ordering (repeatedly
//! removing a minimum-degree vertex) is the classic choice for clique
//! workloads — it bounds every `Γ_>` set by the graph's degeneracy
//! `d`, typically orders of magnitude below the maximum degree of a
//! social network.
//!
//! [`relabel_by`] rewrites a graph under any permutation so the
//! ordering becomes the ID order that the mining apps key on; the
//! `ablations` bench quantifies the effect.

use crate::adj::AdjList;
use crate::graph::Graph;
use crate::ids::VertexId;

/// Computes a degeneracy ordering: `order[k]` is the `k`-th vertex
/// removed, always one of minimum remaining degree. Returns the order
/// and the degeneracy (the largest degree seen at removal time).
///
/// Runs in `O(|V| + |E|)` via bucketed degrees.
pub fn degeneracy_order(g: &Graph) -> (Vec<VertexId>, usize) {
    let n = g.num_vertices();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let mut degree: Vec<usize> = (0..n).map(|i| g.degree(VertexId(i as u32))).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);
    // Buckets of vertices by current degree.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_degree + 1];
    for (i, &d) in degree.iter().enumerate() {
        buckets[d].push(i as u32);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0usize;
    let mut cursor = 0usize; // lowest possibly-non-empty bucket
    for _ in 0..n {
        // Find the minimum-degree unremoved vertex. `cursor` only
        // moves down by 1 per removal, keeping the scan linear.
        while buckets[cursor].is_empty() {
            cursor += 1;
        }
        // Entries may be stale (degree since decreased); skip them.
        let v = loop {
            match buckets[cursor].pop() {
                Some(v) if !removed[v as usize] && degree[v as usize] == cursor => break v,
                Some(_) => continue,
                None => {
                    cursor += 1;
                    while buckets[cursor].is_empty() {
                        cursor += 1;
                    }
                }
            }
        };
        removed[v as usize] = true;
        degeneracy = degeneracy.max(cursor);
        order.push(VertexId(v));
        for u in g.neighbors(VertexId(v)).iter() {
            let ui = u.index();
            if !removed[ui] {
                degree[ui] -= 1;
                buckets[degree[ui]].push(u.0);
                // A neighbor may now have smaller degree than cursor.
                cursor = cursor.min(degree[ui]);
            }
        }
    }
    (order, degeneracy)
}

/// Relabels `g` so that `order[k]` becomes vertex `k`; labels follow
/// their vertices. After relabeling, ID-ordered algorithms (MCF, TC)
/// effectively run in the given order.
pub fn relabel_by(g: &Graph, order: &[VertexId]) -> Graph {
    let n = g.num_vertices();
    assert_eq!(order.len(), n, "order must be a permutation of the vertices");
    let mut new_id = vec![u32::MAX; n];
    for (k, &v) in order.iter().enumerate() {
        assert!(new_id[v.index()] == u32::MAX, "duplicate vertex {v} in order");
        new_id[v.index()] = k as u32;
    }
    let mut adj = vec![AdjList::new(); n];
    for v in g.vertices() {
        let nv = new_id[v.index()] as usize;
        let mapped: Vec<VertexId> =
            g.neighbors(v).iter().map(|u| VertexId(new_id[u.index()])).collect();
        adj[nv] = AdjList::from_unsorted(mapped);
    }
    let out = Graph::from_adjacency(adj);
    match g.labels() {
        Some(labels) => {
            let mut new_labels = vec![Default::default(); n];
            for v in 0..n {
                new_labels[new_id[v] as usize] = labels[v];
            }
            out.with_labels(new_labels)
        }
        None => out,
    }
}

/// Convenience: relabels `g` into degeneracy order and returns the
/// graph plus its degeneracy.
pub fn degeneracy_relabel(g: &Graph) -> (Graph, usize) {
    let (order, d) = degeneracy_order(g);
    (relabel_by(g, &order), d)
}

/// The maximum `|Γ_>(v)|` over all vertices — the top-level task size
/// bound that an ordering produces.
pub fn max_forward_degree(g: &Graph) -> usize {
    g.vertices().map(|v| g.neighbors(v).greater_than(v).len()).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn degeneracy_of_known_graphs() {
        // Trees have degeneracy 1, cycles 2, complete graphs n-1.
        let (_, d) = degeneracy_order(&gen::star(10));
        assert_eq!(d, 1);
        let (_, d) = degeneracy_order(&gen::cycle(8));
        assert_eq!(d, 2);
        let (_, d) = degeneracy_order(&gen::complete(6));
        assert_eq!(d, 5);
    }

    #[test]
    fn order_is_a_permutation() {
        let g = gen::gnp(200, 0.05, 4);
        let (order, _) = degeneracy_order(&g);
        let mut sorted: Vec<_> = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, g.vertices().collect::<Vec<_>>());
    }

    #[test]
    fn forward_degree_bounded_by_degeneracy_after_relabel() {
        // The defining property: in degeneracy order, every vertex has
        // at most d later neighbors.
        let g = gen::barabasi_albert(2_000, 5, 7);
        let (relabeled, d) = degeneracy_relabel(&g);
        assert!(relabeled.validate_undirected().is_ok());
        assert_eq!(relabeled.num_edges(), g.num_edges());
        let fwd = max_forward_degree(&relabeled);
        assert!(fwd <= d, "forward degree {fwd} exceeds degeneracy {d}");
        // And it is a real improvement over the hub-dominated raw order.
        assert!(fwd < max_forward_degree(&g));
    }

    #[test]
    fn relabel_preserves_structure_and_labels() {
        let g = gen::random_labels(gen::gnp(60, 0.1, 3), 3, 5);
        let (order, _) = degeneracy_order(&g);
        let r = relabel_by(&g, &order);
        assert_eq!(r.num_edges(), g.num_edges());
        // Degree multiset preserved.
        let mut dg: Vec<_> = g.vertices().map(|v| g.degree(v)).collect();
        let mut dr: Vec<_> = r.vertices().map(|v| r.degree(v)).collect();
        dg.sort_unstable();
        dr.sort_unstable();
        assert_eq!(dg, dr);
        // Labels moved with their vertices.
        for (k, &v) in order.iter().enumerate() {
            assert_eq!(r.label(VertexId(k as u32)), g.label(v));
        }
    }

    #[test]
    fn empty_graph() {
        let (order, d) = degeneracy_order(&Graph::with_vertices(0));
        assert!(order.is_empty());
        assert_eq!(d, 0);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_order_rejected() {
        let g = gen::cycle(4);
        let _ = relabel_by(&g, &[VertexId(0)]);
    }
}
