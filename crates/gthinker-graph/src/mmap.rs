//! Read-only memory mapping of graph files.
//!
//! [`Region`] wraps an `mmap(PROT_READ, MAP_SHARED)` of a whole file,
//! unmapped on drop. The compressed graph backend keeps one `Region`
//! alive for the lifetime of a job; pages are faulted in lazily by the
//! per-vertex decode path, so resident memory tracks the working set
//! rather than the file size.
//!
//! For tests and non-unix portability [`Backing`] also has an `Owned`
//! variant holding the file contents in a `Vec<u8>` — every consumer
//! goes through [`Backing::as_slice`] and cannot tell the difference.

use std::fs::File;
use std::io;

/// Access-pattern hint forwarded to `madvise`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Advice {
    /// Mostly point lookups; disable readahead.
    Random,
    /// Front-to-back scan; read ahead aggressively.
    Sequential,
}

/// An immutable `mmap`ed byte range. Unmapped on drop.
pub struct Region {
    ptr: *mut libc::c_void,
    len: usize,
}

// The mapping is PROT_READ and never mutated after construction, so
// sharing the pointer across threads is sound.
unsafe impl Send for Region {}
unsafe impl Sync for Region {}

impl Region {
    /// Maps `len` bytes of `file` starting at offset 0.
    ///
    /// Fails with `InvalidInput` for a zero-length file (Linux rejects
    /// zero-length mappings) and surfaces the OS error otherwise.
    pub fn map(file: &File, len: usize) -> io::Result<Region> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "cannot mmap an empty file"));
        }
        let ptr = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                len,
                libc::PROT_READ,
                libc::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == libc::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Region { ptr, len })
    }

    /// Advises the kernel about the expected access pattern. Purely a
    /// hint; failures are ignored.
    pub fn advise(&self, advice: Advice) {
        let flag = match advice {
            Advice::Random => libc::MADV_RANDOM,
            Advice::Sequential => libc::MADV_SEQUENTIAL,
        };
        unsafe {
            let _ = libc::madvise(self.ptr, self.len, flag);
        }
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

impl Drop for Region {
    fn drop(&mut self) {
        unsafe {
            let _ = libc::munmap(self.ptr, self.len);
        }
    }
}

/// Where a compressed graph's bytes live: a lazily-faulted file mapping
/// or an ordinary heap buffer.
pub enum Backing {
    Mapped(Region),
    Owned(Vec<u8>),
}

impl Backing {
    /// Maps the file at `path` read-only.
    pub fn map_file(path: &std::path::Path) -> io::Result<Backing> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file too large to map on this platform",
            ));
        }
        Ok(Backing::Mapped(Region::map(&file, len as usize)?))
    }

    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Backing::Mapped(region) => region.as_slice(),
            Backing::Owned(bytes) => bytes,
        }
    }

    /// Heap bytes held by this backing. A mapping owns no heap — its
    /// pages are accounted to the page cache, which is the point.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Backing::Mapped(_) => 0,
            Backing::Owned(bytes) => bytes.capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gthinker-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn mapped_file_round_trips() {
        let path = tmp("round.dat");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let backing = Backing::map_file(&path).unwrap();
        assert_eq!(backing.as_slice(), &payload[..]);
        assert_eq!(backing.heap_bytes(), 0);
        if let Backing::Mapped(region) = &backing {
            region.advise(Advice::Random);
            region.advise(Advice::Sequential);
        }
        drop(backing);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_is_rejected() {
        let path = tmp("empty.dat");
        std::fs::File::create(&path).unwrap();
        assert!(Backing::map_file(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn owned_backing_serves_bytes() {
        let backing = Backing::Owned(vec![1, 2, 3]);
        assert_eq!(backing.as_slice(), &[1, 2, 3]);
        assert!(backing.heap_bytes() >= 3);
    }
}
