//! Dense bitsets for word-parallel mining kernels.
//!
//! The serial miners spend their time on three primitives: membership
//! (`u ∈ S`), intersection (`S ∩ Γ(v)`) and intersection *size*
//! (`|S ∩ Γ(v)|`). On the small, dense subgraphs a task mines, all
//! three collapse to a handful of 64-bit word operations when the sets
//! are stored as bitsets — the BBMC family of maximum-clique solvers
//! is built on exactly this observation. [`BitSet`] is that
//! representation: a fixed-universe set over `Vec<u64>` words whose
//! combining operations never allocate, so recursion scratch can be
//! reused across millions of branch-and-bound nodes.
//!
//! [`LocalGraph`](crate::subgraph::LocalGraph) stores its optional
//! dense adjacency matrix as raw word rows (`&[u64]`), so every
//! combining operation comes in two flavors: one taking another
//! [`BitSet`] and one taking a bare word slice.

/// A fixed-universe set of `u32` elements backed by `u64` words.
///
/// Bits at positions `>= universe size` are kept zero at all times, so
/// popcounts and word-wise combines never need trailing masks.
///
/// ```
/// use gthinker_graph::bitset::BitSet;
///
/// let mut s = BitSet::new(100);
/// s.insert(3);
/// s.insert(64);
/// assert!(s.contains(3) && !s.contains(4));
/// assert_eq!(s.count(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    nbits: usize,
}

/// Number of `u64` words needed for `nbits` bits.
#[inline]
pub const fn words_for(nbits: usize) -> usize {
    nbits.div_ceil(64)
}

impl BitSet {
    /// An empty set over the universe `0..nbits`.
    pub fn new(nbits: usize) -> Self {
        BitSet { words: vec![0; words_for(nbits)], nbits }
    }

    /// The full set `{0, …, nbits−1}`.
    pub fn full(nbits: usize) -> Self {
        let mut s = BitSet::new(nbits);
        s.set_all();
        s
    }

    /// Universe size (maximum element + 1).
    #[inline]
    pub fn universe(&self) -> usize {
        self.nbits
    }

    /// The backing words.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Inserts `i`.
    ///
    /// # Panics
    /// Panics if `i` is outside the universe.
    #[inline]
    pub fn insert(&mut self, i: u32) {
        debug_assert!((i as usize) < self.nbits, "bit {i} outside universe {}", self.nbits);
        self.words[i as usize >> 6] |= 1u64 << (i & 63);
    }

    /// Removes `i` (no-op if absent).
    #[inline]
    pub fn remove(&mut self, i: u32) {
        debug_assert!((i as usize) < self.nbits, "bit {i} outside universe {}", self.nbits);
        self.words[i as usize >> 6] &= !(1u64 << (i & 63));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: u32) -> bool {
        (i as usize) < self.nbits && self.words[i as usize >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Inserts every element of the universe.
    pub fn set_all(&mut self) {
        self.words.fill(!0);
        self.mask_tail();
    }

    /// Zeroes the bits above the universe in the last word.
    #[inline]
    fn mask_tail(&mut self) {
        let tail = self.nbits & 63;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of elements (popcount over all words).
    #[inline]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no element is present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The smallest element, if any.
    #[inline]
    pub fn first_set(&self) -> Option<u32> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some((wi as u32) << 6 | w.trailing_zeros());
            }
        }
        None
    }

    /// Copies `src` into `self` (universes must match).
    #[inline]
    pub fn copy_from(&mut self, src: &BitSet) {
        debug_assert_eq!(self.nbits, src.nbits);
        self.words.copy_from_slice(&src.words);
    }

    /// `self ∧= other`.
    #[inline]
    pub fn and_assign(&mut self, other: &BitSet) {
        self.and_assign_words(&other.words);
    }

    /// `self ∨= other`.
    #[inline]
    pub fn or_assign(&mut self, other: &BitSet) {
        debug_assert_eq!(self.nbits, other.nbits);
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self ∧= ¬other` (set difference).
    #[inline]
    pub fn and_not_assign(&mut self, other: &BitSet) {
        self.and_not_assign_words(&other.words);
    }

    /// `self ∧= row` where `row` is a raw word slice (e.g. a dense
    /// adjacency row).
    #[inline]
    pub fn and_assign_words(&mut self, row: &[u64]) {
        debug_assert_eq!(self.words.len(), row.len());
        for (a, &b) in self.words.iter_mut().zip(row) {
            *a &= b;
        }
    }

    /// `self ∧= ¬row`.
    #[inline]
    pub fn and_not_assign_words(&mut self, row: &[u64]) {
        debug_assert_eq!(self.words.len(), row.len());
        for (a, &b) in self.words.iter_mut().zip(row) {
            *a &= !b;
        }
    }

    /// `self = src ∧ row` — the one-sweep candidate-set refinement of
    /// BBMC (`new_cand = cand ∧ Γ(v)`).
    #[inline]
    pub fn assign_and_words(&mut self, src: &BitSet, row: &[u64]) {
        debug_assert_eq!(self.words.len(), src.words.len());
        debug_assert_eq!(self.words.len(), row.len());
        for ((d, &a), &b) in self.words.iter_mut().zip(&src.words).zip(row) {
            *d = a & b;
        }
    }

    /// `self = src ∧ ¬row`.
    #[inline]
    pub fn assign_and_not_words(&mut self, src: &BitSet, row: &[u64]) {
        debug_assert_eq!(self.words.len(), src.words.len());
        debug_assert_eq!(self.words.len(), row.len());
        for ((d, &a), &b) in self.words.iter_mut().zip(&src.words).zip(row) {
            *d = a & !b;
        }
    }

    /// `|self ∧ row|` without materializing the intersection.
    #[inline]
    pub fn and_count_words(&self, row: &[u64]) -> usize {
        and_count(&self.words, row)
    }

    /// True if `self ∧ row` is non-empty (early-exits on the first
    /// overlapping word) — the coloring test `class ∧ Γ(v) ≠ ∅`.
    #[inline]
    pub fn intersects_words(&self, row: &[u64]) -> bool {
        self.words.iter().zip(row).any(|(&a, &b)| a & b != 0)
    }

    /// Iterates elements in ascending order.
    pub fn iter(&self) -> Ones<'_> {
        Ones { words: &self.words, word_idx: 0, current: self.words.first().copied().unwrap_or(0) }
    }
}

/// `|a ∧ b|` over raw word slices (slices must have equal length).
#[inline]
pub fn and_count(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| (x & y).count_ones() as usize).sum()
}

/// `|{i ≥ from : i ∈ a ∧ b}|` — intersection size restricted to
/// elements at or above `from`; the oriented inner loop of triangle
/// counting (`|Γ_>(u) ∩ Γ_>(v)|`).
#[inline]
pub fn and_count_from(a: &[u64], b: &[u64], from: u32) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let start = (from as usize) >> 6;
    if start >= a.len() {
        return 0;
    }
    let mut n = ((a[start] & b[start]) >> (from & 63)).count_ones() as usize;
    for i in (start + 1)..a.len() {
        n += (a[i] & b[i]).count_ones() as usize;
    }
    n
}

/// Ascending iterator over the set bits of a word slice.
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1; // clear lowest set bit
        Some((self.word_idx as u32) << 6 | bit)
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = u32;
    type IntoIter = Ones<'a>;
    fn into_iter(self) -> Ones<'a> {
        self.iter()
    }
}

impl FromIterator<u32> for BitSet {
    /// Collects into a set whose universe is `max + 1`.
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let elems: Vec<u32> = iter.into_iter().collect();
        let nbits = elems.iter().max().map_or(0, |&m| m as usize + 1);
        let mut s = BitSet::new(nbits);
        for e in elems {
            s.insert(e);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        for i in [0u32, 63, 64, 65, 129] {
            assert!(!s.contains(i));
            s.insert(i);
            assert!(s.contains(i));
        }
        assert_eq!(s.count(), 5);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 4);
        s.remove(64); // idempotent
        assert_eq!(s.count(), 4);
    }

    #[test]
    fn full_and_clear() {
        let mut s = BitSet::full(70);
        assert_eq!(s.count(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70), "tail bits stay clear");
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.first_set(), None);
    }

    #[test]
    fn zero_universe() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(BitSet::full(0).count(), 0);
    }

    #[test]
    fn word_parallel_combines() {
        let mut a = BitSet::new(128);
        for i in [1u32, 5, 64, 100] {
            a.insert(i);
        }
        let mut b = BitSet::new(128);
        for i in [5u32, 64, 99] {
            b.insert(i);
        }
        assert_eq!(a.and_count_words(b.words()), 2);
        assert!(a.intersects_words(b.words()));
        let mut and = BitSet::new(128);
        and.assign_and_words(&a, b.words());
        assert_eq!(and.iter().collect::<Vec<_>>(), vec![5, 64]);
        let mut diff = BitSet::new(128);
        diff.assign_and_not_words(&a, b.words());
        assert_eq!(diff.iter().collect::<Vec<_>>(), vec![1, 100]);
        a.and_not_assign(&b);
        assert_eq!(a, diff);
        a.or_assign(&and);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 5, 64, 100]);
    }

    #[test]
    fn first_set_and_iter_order() {
        let mut s = BitSet::new(200);
        for i in [199u32, 3, 77] {
            s.insert(i);
        }
        assert_eq!(s.first_set(), Some(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 77, 199]);
    }

    #[test]
    fn and_count_from_restricts_to_suffix() {
        let mut a = BitSet::new(200);
        let mut b = BitSet::new(200);
        for i in [2u32, 10, 63, 64, 150] {
            a.insert(i);
            b.insert(i);
        }
        assert_eq!(and_count_from(a.words(), b.words(), 0), 5);
        assert_eq!(and_count_from(a.words(), b.words(), 10), 4);
        assert_eq!(and_count_from(a.words(), b.words(), 11), 3);
        assert_eq!(and_count_from(a.words(), b.words(), 64), 2);
        assert_eq!(and_count_from(a.words(), b.words(), 151), 0);
        assert_eq!(and_count_from(a.words(), b.words(), 1000), 0);
    }

    #[test]
    fn matches_naive_on_random_universes() {
        // Deterministic pseudo-random membership; cross-checks every
        // combine against a naive set model.
        let n = 300usize;
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut a = BitSet::new(n);
        let mut b = BitSet::new(n);
        let mut na = std::collections::BTreeSet::new();
        let mut nb = std::collections::BTreeSet::new();
        for i in 0..n as u32 {
            if next() % 3 == 0 {
                a.insert(i);
                na.insert(i);
            }
            if next() % 2 == 0 {
                b.insert(i);
                nb.insert(i);
            }
        }
        assert_eq!(a.count(), na.len());
        assert_eq!(a.and_count_words(b.words()), na.intersection(&nb).count());
        assert_eq!(a.iter().collect::<Vec<_>>(), na.iter().copied().collect::<Vec<_>>());
        let mut and = BitSet::new(n);
        and.assign_and_words(&a, b.words());
        assert_eq!(
            and.iter().collect::<Vec<_>>(),
            na.intersection(&nb).copied().collect::<Vec<_>>()
        );
    }
}
