//! Degree statistics and dataset summaries (Table II style reporting).

use crate::graph::Graph;

/// Summary statistics of a graph, mirroring the columns the paper
/// reports for its datasets plus degree-distribution detail.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// `|V|`.
    pub num_vertices: usize,
    /// `|E|` (undirected).
    pub num_edges: usize,
    /// Largest vertex degree.
    pub max_degree: usize,
    /// Mean degree `2|E| / |V|`.
    pub avg_degree: f64,
    /// Number of isolated (degree-0) vertices.
    pub isolated: usize,
    /// 50th percentile degree.
    pub degree_p50: usize,
    /// 90th percentile degree.
    pub degree_p90: usize,
    /// 95th percentile degree.
    pub degree_p95: usize,
    /// 99th percentile degree.
    pub degree_p99: usize,
}

impl GraphStats {
    /// Computes statistics over `g`.
    pub fn of(g: &Graph) -> Self {
        Self::from_degrees(g.vertices().map(|v| g.degree(v)))
    }

    /// Computes statistics from a degree sequence — the path `graph
    /// stats` uses for compressed files, where degrees are readable
    /// without decoding any adjacency
    /// ([`crate::compressed::CompressedGraph::degrees`]).
    pub fn from_degrees(iter: impl Iterator<Item = usize>) -> Self {
        let mut degrees: Vec<usize> = iter.collect();
        let n = degrees.len();
        if n == 0 {
            return GraphStats {
                num_vertices: 0,
                num_edges: 0,
                max_degree: 0,
                avg_degree: 0.0,
                isolated: 0,
                degree_p50: 0,
                degree_p90: 0,
                degree_p95: 0,
                degree_p99: 0,
            };
        }
        degrees.sort_unstable();
        let num_edges = degrees.iter().sum::<usize>() / 2;
        let pct = |p: f64| -> usize {
            let idx = ((n as f64 - 1.0) * p).round() as usize;
            degrees[idx]
        };
        GraphStats {
            num_vertices: n,
            num_edges,
            max_degree: *degrees.last().unwrap(),
            avg_degree: 2.0 * num_edges as f64 / n as f64,
            isolated: degrees.iter().take_while(|&&d| d == 0).count(),
            degree_p50: pct(0.50),
            degree_p90: pct(0.90),
            degree_p95: pct(0.95),
            degree_p99: pct(0.99),
        }
    }
}

/// The full degree histogram: `histogram[d]` = number of vertices with
/// degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let max = g.vertices().map(|v| g.degree(v)).max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::ids::VertexId;

    #[test]
    fn stats_of_star() {
        let g = gen::star(11); // hub degree 10, leaves degree 1
        let s = GraphStats::of(&g);
        assert_eq!(s.num_vertices, 11);
        assert_eq!(s.num_edges, 10);
        assert_eq!(s.max_degree, 10);
        assert!((s.avg_degree - 20.0 / 11.0).abs() < 1e-9);
        assert_eq!(s.isolated, 0);
        assert_eq!(s.degree_p50, 1);
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = GraphStats::of(&Graph::with_vertices(0));
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.num_edges, 0);
    }

    #[test]
    fn isolated_counted() {
        let g = Graph::from_edges(4, &[(VertexId(0), VertexId(1))]);
        let s = GraphStats::of(&g);
        assert_eq!(s.isolated, 2);
    }

    #[test]
    fn from_degrees_matches_of_and_includes_p95() {
        let g = gen::barabasi_albert(300, 3, 2);
        let a = GraphStats::of(&g);
        let b = GraphStats::from_degrees(g.vertices().map(|v| g.degree(v)));
        assert_eq!(a, b);
        assert!(a.degree_p50 <= a.degree_p95 && a.degree_p95 <= a.degree_p99);
        assert!(a.degree_p99 <= a.max_degree);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = gen::gnp(100, 0.05, 9);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 100);
        let s = GraphStats::of(&g);
        assert_eq!(h.len() - 1, s.max_degree);
    }
}
