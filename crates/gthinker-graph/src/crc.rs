//! CRC32 (IEEE 802.3, the zlib polynomial).
//!
//! Lives in the graph crate — the lowest layer of the workspace — so the
//! compressed graph trailer, the checkpoint trailer and the wire frame
//! format all validate integrity with the same code. `gthinker-task`
//! re-exports [`crc32`] for the upper layers.

/// Lookup table built at compile time — no external crate.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Incremental CRC32 state, for checksumming data produced in chunks
/// (e.g. a compressed graph streamed through a `BufWriter`).
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    #[inline]
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far.
    #[inline]
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

/// One-shot CRC32 of `data` (matches zlib's `crc32`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

/// A `Write` adapter that checksums every byte passing through it.
pub struct Crc32Writer<W: std::io::Write> {
    inner: W,
    crc: Crc32,
    written: u64,
}

impl<W: std::io::Write> Crc32Writer<W> {
    pub fn new(inner: W) -> Self {
        Crc32Writer { inner, crc: Crc32::new(), written: 0 }
    }

    /// Bytes written so far (all of them checksummed).
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// Current checksum over everything written.
    pub fn crc(&self) -> u32 {
        self.crc.finalize()
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: std::io::Write> std::io::Write for Crc32Writer<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn matches_the_reference_vector() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), crc32(data));
    }

    #[test]
    fn writer_checksums_what_it_writes() {
        let mut w = Crc32Writer::new(Vec::new());
        w.write_all(b"hello ").unwrap();
        w.write_all(b"world").unwrap();
        assert_eq!(w.bytes_written(), 11);
        assert_eq!(w.crc(), crc32(b"hello world"));
        assert_eq!(w.into_inner(), b"hello world");
    }
}
