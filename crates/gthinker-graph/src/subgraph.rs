//! The task-local subgraph `g` of the paper's `Subgraph` class.
//!
//! A task grows its subgraph by saving pulled vertices (and the relevant
//! part of their adjacency lists) into `g` inside `compute()`; the
//! framework releases the pulled cache entries right after `compute()`
//! returns, so everything the task still needs must live here.
//!
//! Two forms are provided:
//! * [`Subgraph`] — keyed by global [`VertexId`], growable, cheap
//!   membership tests; what the user-facing API manipulates.
//! * [`LocalGraph`] — a dense-index snapshot for tight serial mining
//!   loops (Bron–Kerbosch, matching); built once via
//!   [`Subgraph::to_local`].

use crate::adj::AdjList;
use crate::hash::{fast_map_with_capacity, FastMap};
use crate::ids::{Label, VertexId};

/// A growable subgraph keyed by global vertex IDs.
#[derive(Clone, Debug, Default)]
pub struct Subgraph {
    verts: Vec<VertexId>,
    index: FastMap<VertexId, u32>,
    adj: Vec<AdjList>,
    labels: Vec<Label>,
    labeled: bool,
}

impl Subgraph {
    /// Creates an empty subgraph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty subgraph sized for roughly `cap` vertices.
    pub fn with_capacity(cap: usize) -> Self {
        Subgraph {
            verts: Vec::with_capacity(cap),
            index: fast_map_with_capacity(cap),
            adj: Vec::with_capacity(cap),
            labels: Vec::new(),
            labeled: false,
        }
    }

    /// Number of vertices `|V(g)|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.verts.len()
    }

    /// Number of undirected edges currently stored.
    ///
    /// Counts only edges whose **both** endpoints are in the subgraph;
    /// adjacency entries referring to vertices not (yet) added are
    /// ignored. An entry is counted once whether or not it is mirrored.
    pub fn num_edges(&self) -> usize {
        let mut n = 0usize;
        for (i, a) in self.adj.iter().enumerate() {
            let u = self.verts[i];
            for v in a.iter() {
                if !self.contains(v) {
                    continue;
                }
                // Count each unordered pair once: either u < v, or the
                // mirror entry is absent.
                if u < v || !self.neighbors(v).is_some_and(|nb| nb.contains(u)) {
                    n += 1;
                }
            }
        }
        n
    }

    /// True if the subgraph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// True if `v` has been added.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.index.contains_key(&v)
    }

    /// Adds vertex `v` with adjacency `adj` (the caller typically filters
    /// the pulled `Γ(v)` down to vertices relevant to this task first).
    /// Returns `false` without modifying anything if `v` is already
    /// present.
    pub fn add_vertex(&mut self, v: VertexId, adj: AdjList) -> bool {
        if self.contains(v) {
            return false;
        }
        self.index.insert(v, self.verts.len() as u32);
        self.verts.push(v);
        self.adj.push(adj);
        if self.labeled {
            self.labels.push(Label::default());
        }
        true
    }

    /// Adds a labeled vertex (for matching workloads).
    pub fn add_labeled_vertex(&mut self, v: VertexId, label: Label, adj: AdjList) -> bool {
        if self.contains(v) {
            return false;
        }
        if !self.labeled {
            // Upgrade: back-fill default labels for earlier vertices.
            self.labels = vec![Label::default(); self.verts.len()];
            self.labeled = true;
        }
        self.index.insert(v, self.verts.len() as u32);
        self.verts.push(v);
        self.adj.push(adj);
        self.labels.push(label);
        true
    }

    /// The vertex IDs in insertion order.
    pub fn vertex_ids(&self) -> &[VertexId] {
        &self.verts
    }

    /// The stored adjacency of `v`, if present.
    pub fn neighbors(&self, v: VertexId) -> Option<&AdjList> {
        self.index.get(&v).map(|&i| &self.adj[i as usize])
    }

    /// The label of `v`, if labels are in use and `v` is present.
    pub fn label(&self, v: VertexId) -> Option<Label> {
        if !self.labeled {
            return None;
        }
        self.index.get(&v).map(|&i| self.labels[i as usize])
    }

    /// Edge membership within the subgraph (checks the stored entry of
    /// either endpoint, so one-directional storage suffices).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).map(|a| a.contains(v)).unwrap_or(false)
            || self.neighbors(v).map(|a| a.contains(u)).unwrap_or(false)
    }

    /// Snapshots into a dense [`LocalGraph`] for serial mining.
    ///
    /// Vertices are renumbered `0..n` **in ascending global-ID order** so
    /// that ID-based pruning rules keep working on local indices.
    /// Adjacency is symmetrized and restricted to subgraph members.
    pub fn to_local(&self) -> LocalGraph {
        let mut order: Vec<u32> = (0..self.verts.len() as u32).collect();
        order.sort_unstable_by_key(|&i| self.verts[i as usize]);
        let mut rank = vec![0u32; self.verts.len()];
        for (new, &old) in order.iter().enumerate() {
            rank[old as usize] = new as u32;
        }
        let n = self.verts.len();
        let mut nbrs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (old, a) in self.adj.iter().enumerate() {
            let lu = rank[old] as usize;
            for v in a.iter() {
                if let Some(&ov) = self.index.get(&v) {
                    let lv = rank[ov as usize] as usize;
                    if lu != lv {
                        nbrs[lu].push(lv as u32);
                        nbrs[lv].push(lu as u32);
                    }
                }
            }
        }
        let adj: Vec<Vec<u32>> = nbrs
            .into_iter()
            .map(|mut l| {
                l.sort_unstable();
                l.dedup();
                l
            })
            .collect();
        let ids: Vec<VertexId> = order.iter().map(|&i| self.verts[i as usize]).collect();
        let labels = if self.labeled {
            Some(order.iter().map(|&i| self.labels[i as usize]).collect())
        } else {
            None
        };
        LocalGraph { ids, adj, labels }
    }

    /// Approximate heap bytes held by this subgraph (task memory
    /// accounting for the simulator).
    pub fn heap_bytes(&self) -> usize {
        let lists: usize = self.adj.iter().map(AdjList::heap_bytes).sum();
        lists
            + self.verts.capacity() * std::mem::size_of::<VertexId>()
            + self.adj.capacity() * std::mem::size_of::<AdjList>()
            + self.index.capacity()
                * (std::mem::size_of::<VertexId>() + std::mem::size_of::<u32>())
            + self.labels.capacity() * std::mem::size_of::<Label>()
    }
}

/// A dense-index, symmetric snapshot of a [`Subgraph`] for serial miners.
#[derive(Clone, Debug)]
pub struct LocalGraph {
    ids: Vec<VertexId>,
    adj: Vec<Vec<u32>>,
    labels: Option<Vec<Label>>,
}

impl LocalGraph {
    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.ids.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Sorted neighbor indices of local vertex `i`.
    #[inline]
    pub fn neighbors(&self, i: u32) -> &[u32] {
        &self.adj[i as usize]
    }

    /// Degree of local vertex `i`.
    #[inline]
    pub fn degree(&self, i: u32) -> usize {
        self.adj[i as usize].len()
    }

    /// The global ID of local vertex `i`.
    #[inline]
    pub fn global_id(&self, i: u32) -> VertexId {
        self.ids[i as usize]
    }

    /// The label of local vertex `i`, if labeled.
    pub fn label(&self, i: u32) -> Option<Label> {
        self.labels.as_ref().map(|l| l[i as usize])
    }

    /// Edge membership between local indices.
    pub fn has_edge(&self, i: u32, j: u32) -> bool {
        self.adj[i as usize].binary_search(&j).is_ok()
    }

    /// Maps a set of local indices back to global IDs.
    pub fn to_global(&self, locals: &[u32]) -> Vec<VertexId> {
        locals.iter().map(|&i| self.global_id(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adj(v: &[u32]) -> AdjList {
        AdjList::from_unsorted(v.iter().map(|&x| VertexId(x)).collect())
    }

    #[test]
    fn add_and_query_vertices() {
        let mut g = Subgraph::new();
        assert!(g.add_vertex(VertexId(5), adj(&[7])));
        assert!(g.add_vertex(VertexId(7), adj(&[5])));
        assert!(!g.add_vertex(VertexId(5), adj(&[])), "duplicate add rejected");
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(VertexId(5), VertexId(7)));
        assert!(g.contains(VertexId(7)));
        assert!(!g.contains(VertexId(9)));
    }

    #[test]
    fn one_directional_storage_still_counts_each_edge_once() {
        // Typical task pattern: only store the edge at the smaller endpoint.
        let mut g = Subgraph::new();
        g.add_vertex(VertexId(1), adj(&[2, 3]));
        g.add_vertex(VertexId(2), adj(&[]));
        g.add_vertex(VertexId(3), adj(&[]));
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(VertexId(2), VertexId(1)));
    }

    #[test]
    fn dangling_adjacency_entries_ignored_by_num_edges() {
        let mut g = Subgraph::new();
        g.add_vertex(VertexId(1), adj(&[2, 99])); // 99 never added
        g.add_vertex(VertexId(2), adj(&[1]));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn to_local_sorts_by_global_id_and_symmetrizes() {
        let mut g = Subgraph::new();
        g.add_vertex(VertexId(30), adj(&[10]));
        g.add_vertex(VertexId(10), adj(&[20]));
        g.add_vertex(VertexId(20), adj(&[]));
        let l = g.to_local();
        assert_eq!(l.num_vertices(), 3);
        assert_eq!(l.global_id(0), VertexId(10));
        assert_eq!(l.global_id(1), VertexId(20));
        assert_eq!(l.global_id(2), VertexId(30));
        // Edges 30-10 and 10-20 must appear symmetrically.
        assert!(l.has_edge(0, 2) && l.has_edge(2, 0));
        assert!(l.has_edge(0, 1) && l.has_edge(1, 0));
        assert!(!l.has_edge(1, 2));
        assert_eq!(l.num_edges(), 2);
        assert_eq!(l.to_global(&[0, 2]), vec![VertexId(10), VertexId(30)]);
    }

    #[test]
    fn labels_upgrade_backfills_existing_vertices() {
        let mut g = Subgraph::new();
        g.add_vertex(VertexId(1), adj(&[]));
        g.add_labeled_vertex(VertexId(2), Label(4), adj(&[]));
        assert_eq!(g.label(VertexId(1)), Some(Label(0)));
        assert_eq!(g.label(VertexId(2)), Some(Label(4)));
        let l = g.to_local();
        assert_eq!(l.label(1), Some(Label(4)));
    }

    #[test]
    fn unlabeled_subgraph_returns_no_labels() {
        let mut g = Subgraph::new();
        g.add_vertex(VertexId(1), adj(&[]));
        assert_eq!(g.label(VertexId(1)), None);
        assert_eq!(g.to_local().label(0), None);
    }
}
