//! The task-local subgraph `g` of the paper's `Subgraph` class.
//!
//! A task grows its subgraph by saving pulled vertices (and the relevant
//! part of their adjacency lists) into `g` inside `compute()`; the
//! framework releases the pulled cache entries right after `compute()`
//! returns, so everything the task still needs must live here.
//!
//! Two forms are provided:
//! * [`Subgraph`] — keyed by global [`VertexId`], growable, cheap
//!   membership tests; what the user-facing API manipulates.
//! * [`LocalGraph`] — a dense-index snapshot for tight serial mining
//!   loops (Bron–Kerbosch, matching); built once via
//!   [`Subgraph::to_local`].

use crate::adj::AdjList;
use crate::bitset::words_for;
use crate::hash::{fast_map_with_capacity, FastMap};
use crate::ids::{Label, VertexId};

/// A growable subgraph keyed by global vertex IDs.
#[derive(Clone, Debug, Default)]
pub struct Subgraph {
    verts: Vec<VertexId>,
    index: FastMap<VertexId, u32>,
    adj: Vec<AdjList>,
    labels: Vec<Label>,
    labeled: bool,
}

impl Subgraph {
    /// Creates an empty subgraph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty subgraph sized for roughly `cap` vertices.
    pub fn with_capacity(cap: usize) -> Self {
        Subgraph {
            verts: Vec::with_capacity(cap),
            index: fast_map_with_capacity(cap),
            adj: Vec::with_capacity(cap),
            labels: Vec::new(),
            labeled: false,
        }
    }

    /// Number of vertices `|V(g)|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.verts.len()
    }

    /// Number of undirected edges currently stored.
    ///
    /// Counts only edges whose **both** endpoints are in the subgraph;
    /// adjacency entries referring to vertices not (yet) added are
    /// ignored. An entry is counted once whether or not it is mirrored.
    pub fn num_edges(&self) -> usize {
        let mut n = 0usize;
        for (i, a) in self.adj.iter().enumerate() {
            let u = self.verts[i];
            for v in a.iter() {
                if !self.contains(v) {
                    continue;
                }
                // Count each unordered pair once: either u < v, or the
                // mirror entry is absent.
                if u < v || !self.neighbors(v).is_some_and(|nb| nb.contains(u)) {
                    n += 1;
                }
            }
        }
        n
    }

    /// True if the subgraph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// True if `v` has been added.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.index.contains_key(&v)
    }

    /// Adds vertex `v` with adjacency `adj` (the caller typically filters
    /// the pulled `Γ(v)` down to vertices relevant to this task first).
    /// Returns `false` without modifying anything if `v` is already
    /// present.
    pub fn add_vertex(&mut self, v: VertexId, adj: AdjList) -> bool {
        if self.contains(v) {
            return false;
        }
        self.index.insert(v, self.verts.len() as u32);
        self.verts.push(v);
        self.adj.push(adj);
        if self.labeled {
            self.labels.push(Label::default());
        }
        true
    }

    /// Adds a labeled vertex (for matching workloads).
    pub fn add_labeled_vertex(&mut self, v: VertexId, label: Label, adj: AdjList) -> bool {
        if self.contains(v) {
            return false;
        }
        if !self.labeled {
            // Upgrade: back-fill default labels for earlier vertices.
            self.labels = vec![Label::default(); self.verts.len()];
            self.labeled = true;
        }
        self.index.insert(v, self.verts.len() as u32);
        self.verts.push(v);
        self.adj.push(adj);
        self.labels.push(label);
        true
    }

    /// The vertex IDs in insertion order.
    pub fn vertex_ids(&self) -> &[VertexId] {
        &self.verts
    }

    /// The stored adjacency of `v`, if present.
    pub fn neighbors(&self, v: VertexId) -> Option<&AdjList> {
        self.index.get(&v).map(|&i| &self.adj[i as usize])
    }

    /// The label of `v`, if labels are in use and `v` is present.
    pub fn label(&self, v: VertexId) -> Option<Label> {
        if !self.labeled {
            return None;
        }
        self.index.get(&v).map(|&i| self.labels[i as usize])
    }

    /// Edge membership within the subgraph (checks the stored entry of
    /// either endpoint, so one-directional storage suffices).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).map(|a| a.contains(v)).unwrap_or(false)
            || self.neighbors(v).map(|a| a.contains(u)).unwrap_or(false)
    }

    /// Snapshots into a dense [`LocalGraph`] for serial mining, using
    /// the default dense-matrix threshold
    /// ([`LocalGraph::DEFAULT_DENSE_THRESHOLD`]).
    ///
    /// Vertices are renumbered `0..n` **in ascending global-ID order** so
    /// that ID-based pruning rules keep working on local indices.
    /// Adjacency is symmetrized and restricted to subgraph members.
    pub fn to_local(&self) -> LocalGraph {
        self.to_local_with_threshold(LocalGraph::DEFAULT_DENSE_THRESHOLD)
    }

    /// Like [`Subgraph::to_local`], but builds the O(n²/8)-byte dense
    /// adjacency bit matrix only when `n ≤ dense_threshold` (pass `0` to
    /// force the sorted-list representation, `usize::MAX` to force the
    /// matrix; see DESIGN.md §"Kernel selection").
    ///
    /// Symmetric rows are assembled CSR-style with a degree-count pass
    /// followed by a fill pass into one flat buffer — no per-vertex
    /// vectors, no doubled peak memory from mirror-then-dedup.
    pub fn to_local_with_threshold(&self, dense_threshold: usize) -> LocalGraph {
        let n = self.verts.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&i| self.verts[i as usize]);
        let mut rank = vec![0u32; n];
        for (new, &old) in order.iter().enumerate() {
            rank[old as usize] = new as u32;
        }
        // Pass 1: count each local vertex's symmetric degree (mirror
        // entries and duplicates still counted; deduped after sorting).
        let mut deg = vec![0u32; n];
        for (old, a) in self.adj.iter().enumerate() {
            let lu = rank[old];
            for v in a.iter() {
                if let Some(&ov) = self.index.get(&v) {
                    let lv = rank[ov as usize];
                    if lu != lv {
                        deg[lu as usize] += 1;
                        deg[lv as usize] += 1;
                    }
                }
            }
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + deg[i];
        }
        // Pass 2: scatter both directions of every edge into the flat
        // row buffer, reusing `deg` as per-row write cursors.
        let mut nbrs = vec![0u32; offsets[n] as usize];
        let mut cursor = std::mem::take(&mut deg);
        cursor.copy_from_slice(&offsets[..n]);
        for (old, a) in self.adj.iter().enumerate() {
            let lu = rank[old];
            for v in a.iter() {
                if let Some(&ov) = self.index.get(&v) {
                    let lv = rank[ov as usize];
                    if lu != lv {
                        nbrs[cursor[lu as usize] as usize] = lv;
                        cursor[lu as usize] += 1;
                        nbrs[cursor[lv as usize] as usize] = lu;
                        cursor[lv as usize] += 1;
                    }
                }
            }
        }
        // Sort each row in place, then compact duplicates (a mirror
        // entry stored at both endpoints lands twice in each row). The
        // write head never overtakes the read head, so this is safe in
        // the same buffer.
        let mut write = 0usize;
        let mut compact = vec![0u32; n + 1];
        for i in 0..n {
            let (s, e) = (offsets[i] as usize, offsets[i + 1] as usize);
            nbrs[s..e].sort_unstable();
            compact[i] = write as u32;
            let mut last = u32::MAX;
            for k in s..e {
                let v = nbrs[k];
                if v != last {
                    nbrs[write] = v;
                    write += 1;
                    last = v;
                }
            }
        }
        compact[n] = write as u32;
        nbrs.truncate(write);
        let offsets = compact;
        // Dense adjacency bit matrix for word-parallel kernels; rows
        // mirror the (already symmetric, deduped) CSR rows. A zero
        // threshold disables the matrix even for an empty snapshot, so
        // it reliably forces the sorted-list kernels.
        let dense = if dense_threshold > 0 && n <= dense_threshold {
            let wpr = words_for(n);
            let mut bits = vec![0u64; n * wpr];
            for i in 0..n {
                let row = &mut bits[i * wpr..(i + 1) * wpr];
                for &j in &nbrs[offsets[i] as usize..offsets[i + 1] as usize] {
                    row[j as usize >> 6] |= 1u64 << (j & 63);
                }
            }
            Some(DenseAdj { words_per_row: wpr, bits })
        } else {
            None
        };
        let ids: Vec<VertexId> = order.iter().map(|&i| self.verts[i as usize]).collect();
        let labels = if self.labeled {
            Some(order.iter().map(|&i| self.labels[i as usize]).collect())
        } else {
            None
        };
        LocalGraph { ids, offsets, nbrs, labels, dense }
    }

    /// Approximate heap bytes held by this subgraph (task memory
    /// accounting for the simulator).
    pub fn heap_bytes(&self) -> usize {
        let lists: usize = self.adj.iter().map(AdjList::heap_bytes).sum();
        lists
            + self.verts.capacity() * std::mem::size_of::<VertexId>()
            + self.adj.capacity() * std::mem::size_of::<AdjList>()
            + self.index.capacity() * (std::mem::size_of::<VertexId>() + std::mem::size_of::<u32>())
            + self.labels.capacity() * std::mem::size_of::<Label>()
    }
}

/// The dense adjacency bit matrix: row `i` holds `words_per_row` words
/// whose set bits are the neighbors of local vertex `i`.
#[derive(Clone, Debug)]
struct DenseAdj {
    words_per_row: usize,
    bits: Vec<u64>,
}

/// A dense-index, symmetric snapshot of a [`Subgraph`] for serial miners.
///
/// Adjacency is stored CSR-style (one flat sorted buffer plus offsets).
/// For subgraphs up to the dense threshold an adjacency **bit matrix**
/// is also kept, turning [`LocalGraph::has_edge`] into a single bit
/// test and exposing word rows ([`LocalGraph::dense_row`]) that the
/// serial miners combine with [`crate::bitset::BitSet`] scratch.
#[derive(Clone, Debug)]
pub struct LocalGraph {
    ids: Vec<VertexId>,
    offsets: Vec<u32>,
    nbrs: Vec<u32>,
    labels: Option<Vec<Label>>,
    dense: Option<DenseAdj>,
}

impl LocalGraph {
    /// Largest vertex count for which [`Subgraph::to_local`] builds the
    /// dense bit matrix. At this size the matrix costs `n²/8` = 8 MiB —
    /// comparable to the CSR rows a task of that size already holds —
    /// while above it the quadratic memory (and row-scan cost on mostly
    /// empty words) overtakes the win; see DESIGN.md §"Kernel selection".
    pub const DEFAULT_DENSE_THRESHOLD: usize = 8192;

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.ids.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.nbrs.len() / 2
    }

    /// Sorted neighbor indices of local vertex `i`.
    #[inline]
    pub fn neighbors(&self, i: u32) -> &[u32] {
        &self.nbrs[self.offsets[i as usize] as usize..self.offsets[i as usize + 1] as usize]
    }

    /// Degree of local vertex `i`.
    #[inline]
    pub fn degree(&self, i: u32) -> usize {
        (self.offsets[i as usize + 1] - self.offsets[i as usize]) as usize
    }

    /// The global ID of local vertex `i`.
    #[inline]
    pub fn global_id(&self, i: u32) -> VertexId {
        self.ids[i as usize]
    }

    /// The label of local vertex `i`, if labeled.
    pub fn label(&self, i: u32) -> Option<Label> {
        self.labels.as_ref().map(|l| l[i as usize])
    }

    /// True when the dense adjacency bit matrix is available and the
    /// word-parallel kernels apply.
    #[inline]
    pub fn is_dense(&self) -> bool {
        self.dense.is_some()
    }

    /// Words per dense adjacency row (`⌈n/64⌉`); 0 when sparse.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.dense.as_ref().map_or(0, |d| d.words_per_row)
    }

    /// The dense adjacency row of local vertex `i` as a word slice, if
    /// the bit matrix was built.
    #[inline]
    pub fn dense_row(&self, i: u32) -> Option<&[u64]> {
        self.dense.as_ref().map(|d| {
            let start = i as usize * d.words_per_row;
            &d.bits[start..start + d.words_per_row]
        })
    }

    /// Edge membership between local indices: an O(1) bit test when the
    /// dense matrix is present, a binary search otherwise.
    #[inline]
    pub fn has_edge(&self, i: u32, j: u32) -> bool {
        match &self.dense {
            Some(d) => {
                d.bits[i as usize * d.words_per_row + (j as usize >> 6)] & (1u64 << (j & 63)) != 0
            }
            None => self.neighbors(i).binary_search(&j).is_ok(),
        }
    }

    /// Maps a set of local indices back to global IDs.
    pub fn to_global(&self, locals: &[u32]) -> Vec<VertexId> {
        locals.iter().map(|&i| self.global_id(i)).collect()
    }

    /// Approximate heap bytes (CSR rows + bit matrix), for task memory
    /// accounting.
    pub fn heap_bytes(&self) -> usize {
        self.nbrs.capacity() * std::mem::size_of::<u32>()
            + self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.ids.capacity() * std::mem::size_of::<VertexId>()
            + self.dense.as_ref().map_or(0, |d| d.bits.capacity() * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adj(v: &[u32]) -> AdjList {
        AdjList::from_unsorted(v.iter().map(|&x| VertexId(x)).collect())
    }

    #[test]
    fn add_and_query_vertices() {
        let mut g = Subgraph::new();
        assert!(g.add_vertex(VertexId(5), adj(&[7])));
        assert!(g.add_vertex(VertexId(7), adj(&[5])));
        assert!(!g.add_vertex(VertexId(5), adj(&[])), "duplicate add rejected");
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(VertexId(5), VertexId(7)));
        assert!(g.contains(VertexId(7)));
        assert!(!g.contains(VertexId(9)));
    }

    #[test]
    fn one_directional_storage_still_counts_each_edge_once() {
        // Typical task pattern: only store the edge at the smaller endpoint.
        let mut g = Subgraph::new();
        g.add_vertex(VertexId(1), adj(&[2, 3]));
        g.add_vertex(VertexId(2), adj(&[]));
        g.add_vertex(VertexId(3), adj(&[]));
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(VertexId(2), VertexId(1)));
    }

    #[test]
    fn dangling_adjacency_entries_ignored_by_num_edges() {
        let mut g = Subgraph::new();
        g.add_vertex(VertexId(1), adj(&[2, 99])); // 99 never added
        g.add_vertex(VertexId(2), adj(&[1]));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn to_local_sorts_by_global_id_and_symmetrizes() {
        let mut g = Subgraph::new();
        g.add_vertex(VertexId(30), adj(&[10]));
        g.add_vertex(VertexId(10), adj(&[20]));
        g.add_vertex(VertexId(20), adj(&[]));
        let l = g.to_local();
        assert_eq!(l.num_vertices(), 3);
        assert_eq!(l.global_id(0), VertexId(10));
        assert_eq!(l.global_id(1), VertexId(20));
        assert_eq!(l.global_id(2), VertexId(30));
        // Edges 30-10 and 10-20 must appear symmetrically.
        assert!(l.has_edge(0, 2) && l.has_edge(2, 0));
        assert!(l.has_edge(0, 1) && l.has_edge(1, 0));
        assert!(!l.has_edge(1, 2));
        assert_eq!(l.num_edges(), 2);
        assert_eq!(l.to_global(&[0, 2]), vec![VertexId(10), VertexId(30)]);
    }

    #[test]
    fn labels_upgrade_backfills_existing_vertices() {
        let mut g = Subgraph::new();
        g.add_vertex(VertexId(1), adj(&[]));
        g.add_labeled_vertex(VertexId(2), Label(4), adj(&[]));
        assert_eq!(g.label(VertexId(1)), Some(Label(0)));
        assert_eq!(g.label(VertexId(2)), Some(Label(4)));
        let l = g.to_local();
        assert_eq!(l.label(1), Some(Label(4)));
    }

    #[test]
    fn unlabeled_subgraph_returns_no_labels() {
        let mut g = Subgraph::new();
        g.add_vertex(VertexId(1), adj(&[]));
        assert_eq!(g.label(VertexId(1)), None);
        assert_eq!(g.to_local().label(0), None);
    }

    #[test]
    fn dense_matrix_built_iff_within_threshold() {
        let mut g = Subgraph::new();
        for v in 0..10u32 {
            g.add_vertex(VertexId(v), adj(&[(v + 1) % 10]));
        }
        assert!(g.to_local().is_dense(), "default threshold covers n=10");
        assert!(g.to_local_with_threshold(10).is_dense(), "exactly at threshold");
        assert!(!g.to_local_with_threshold(9).is_dense(), "just above threshold");
        let sparse = g.to_local_with_threshold(0);
        assert!(!sparse.is_dense());
        assert_eq!(sparse.words_per_row(), 0);
        assert_eq!(sparse.dense_row(0), None);
    }

    #[test]
    fn dense_and_sparse_agree_on_all_queries() {
        // Oriented storage with dangling entries, to stress the
        // symmetrize-and-restrict path of both representations.
        let mut g = Subgraph::new();
        g.add_vertex(VertexId(9), adj(&[2, 5, 77]));
        g.add_vertex(VertexId(2), adj(&[5, 9]));
        g.add_vertex(VertexId(5), adj(&[]));
        g.add_vertex(VertexId(14), adj(&[2]));
        let dense = g.to_local();
        let sparse = g.to_local_with_threshold(0);
        assert!(dense.is_dense() && !sparse.is_dense());
        assert_eq!(dense.num_vertices(), sparse.num_vertices());
        assert_eq!(dense.num_edges(), sparse.num_edges());
        for i in 0..dense.num_vertices() as u32 {
            assert_eq!(dense.neighbors(i), sparse.neighbors(i));
            assert_eq!(dense.degree(i), sparse.degree(i));
            assert_eq!(dense.global_id(i), sparse.global_id(i));
            for j in 0..dense.num_vertices() as u32 {
                assert_eq!(dense.has_edge(i, j), sparse.has_edge(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn dense_rows_match_csr_rows() {
        let mut g = Subgraph::new();
        for v in 0..70u32 {
            // Ring + chords so rows span more than one word.
            g.add_vertex(VertexId(v), adj(&[(v + 1) % 70, (v + 13) % 70]));
        }
        let l = g.to_local();
        assert!(l.is_dense());
        assert_eq!(l.words_per_row(), 2);
        for i in 0..70u32 {
            let row = l.dense_row(i).unwrap();
            let from_bits: Vec<u32> =
                (0..70u32).filter(|&j| row[j as usize >> 6] & (1u64 << (j & 63)) != 0).collect();
            assert_eq!(from_bits, l.neighbors(i), "row {i}");
        }
    }

    #[test]
    fn mirrored_storage_dedups_rows() {
        // Both endpoints store the edge: the fill pass sees it twice
        // per row; compaction must leave a single entry.
        let mut g = Subgraph::new();
        g.add_vertex(VertexId(1), adj(&[2]));
        g.add_vertex(VertexId(2), adj(&[1]));
        let l = g.to_local();
        assert_eq!(l.num_edges(), 1);
        assert_eq!(l.neighbors(0), &[1]);
        assert_eq!(l.neighbors(1), &[0]);
    }

    #[test]
    fn empty_and_singleton_local_graphs() {
        let g = Subgraph::new();
        let l = g.to_local();
        assert_eq!(l.num_vertices(), 0);
        assert_eq!(l.num_edges(), 0);
        let mut g1 = Subgraph::new();
        g1.add_vertex(VertexId(3), adj(&[3, 99])); // self-loop + dangling: dropped
        let l1 = g1.to_local();
        assert_eq!(l1.num_vertices(), 1);
        assert_eq!(l1.num_edges(), 0);
        assert!(l1.neighbors(0).is_empty());
        assert!(!l1.has_edge(0, 0));
    }
}
