//! Hash partitioning of vertices over workers.
//!
//! G-thinker "adopts the approach of Pregel to hash vertices to machines
//! by vertex ID" instead of requiring an expensive graph-partitioning
//! preprocessing job (which the paper criticizes G-Miner for).

use crate::graph::Graph;
use crate::hash::hash_u64;
use crate::ids::{VertexId, WorkerId};

/// Maps vertex IDs to workers by hashing.
#[derive(Clone, Copy, Debug)]
pub struct HashPartitioner {
    num_workers: u16,
}

impl HashPartitioner {
    /// Creates a partitioner over `num_workers` workers.
    ///
    /// # Panics
    /// Panics if `num_workers == 0`.
    pub fn new(num_workers: u16) -> Self {
        assert!(num_workers > 0, "need at least one worker");
        HashPartitioner { num_workers }
    }

    /// Number of workers this partitioner spreads over.
    #[inline]
    pub fn num_workers(&self) -> u16 {
        self.num_workers
    }

    /// The worker that owns `v`'s `(v, Γ(v))` record.
    #[inline]
    pub fn owner(&self, v: VertexId) -> WorkerId {
        WorkerId((hash_u64(v.0 as u64) % self.num_workers as u64) as u16)
    }

    /// Splits a graph into per-worker vertex partitions; entry `i` holds
    /// the `(v, Γ(v))` records owned by worker `i`.
    pub fn split(&self, g: &Graph) -> Vec<Vec<(VertexId, crate::adj::AdjList)>> {
        let mut parts: Vec<Vec<(VertexId, crate::adj::AdjList)>> =
            (0..self.num_workers).map(|_| Vec::new()).collect();
        for v in g.vertices() {
            parts[self.owner(v).index()].push((v, g.neighbors(v).clone()));
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn owner_is_stable_and_in_range() {
        let p = HashPartitioner::new(4);
        for i in 0..1000u32 {
            let w = p.owner(VertexId(i));
            assert!(w.index() < 4);
            assert_eq!(w, p.owner(VertexId(i)));
        }
    }

    #[test]
    fn single_worker_owns_everything() {
        let p = HashPartitioner::new(1);
        for i in 0..100u32 {
            assert_eq!(p.owner(VertexId(i)), WorkerId(0));
        }
    }

    #[test]
    fn split_covers_all_vertices_exactly_once() {
        let g = gen::gnp(200, 0.05, 1);
        let p = HashPartitioner::new(5);
        let parts = p.split(&g);
        assert_eq!(parts.len(), 5);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, g.num_vertices());
        let mut seen = vec![false; g.num_vertices()];
        for (w, part) in parts.iter().enumerate() {
            for (v, adj) in part {
                assert!(!seen[v.index()], "vertex {v} assigned twice");
                seen[v.index()] = true;
                assert_eq!(p.owner(*v).index(), w);
                assert_eq!(adj, g.neighbors(*v));
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn partitions_are_roughly_balanced() {
        let g = Graph::with_vertices(80_000);
        let p = HashPartitioner::new(8);
        let parts = p.split(&g);
        let expect = 80_000 / 8;
        for part in &parts {
            assert!(
                part.len() > expect / 2 && part.len() < expect * 2,
                "skewed partition: {}",
                part.len()
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = HashPartitioner::new(0);
    }
}
