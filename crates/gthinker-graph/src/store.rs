//! The pluggable adjacency backend.
//!
//! Everything above the storage layer — `to_local`, trimming,
//! partitioning, the vertex cache, the six miners — needs exactly one
//! thing from a graph: "give me `Γ(v)` (and the label) for a vertex I
//! name". [`AdjacencyStore`] is that contract. The in-RAM [`Graph`] and
//! [`Csr`] hand out copies of materialized lists; [`CompressedGraph`]
//! decodes the list from its mapped file on each call. Callers that
//! need decode-once semantics put a cache in front (the worker's
//! `LocalTable`/`VertexCache` layers already are that cache).

use std::sync::Arc;

use crate::adj::AdjList;
use crate::compressed::CompressedGraph;
use crate::csr::Csr;
use crate::graph::Graph;
use crate::ids::{Label, VertexId};

/// A vertex-addressable source of adjacency lists.
///
/// Implementations must be cheap to share across threads; `adjacency`
/// returns an owned list so compressed backends can decode without
/// holding borrows into their storage.
pub trait AdjacencyStore: Send + Sync {
    /// Number of vertices; valid IDs are `0..num_vertices()`.
    fn num_vertices(&self) -> usize;

    /// Number of undirected edges.
    fn num_edges(&self) -> u64;

    /// The sorted adjacency list `Γ(v)`.
    fn adjacency(&self, v: VertexId) -> AdjList;

    /// Degree of `v`; backends override when it is cheaper than a full
    /// decode.
    fn degree(&self, v: VertexId) -> usize {
        self.adjacency(v).degree()
    }

    /// The label of `v` for labeled graphs, else `None`.
    fn label(&self, v: VertexId) -> Option<Label>;

    /// True when the store carries labels.
    fn is_labeled(&self) -> bool;

    /// Heap bytes pinned by the store itself (mapped backends report
    /// ~0: their pages belong to the page cache).
    fn heap_bytes(&self) -> usize;
}

impl AdjacencyStore for Graph {
    fn num_vertices(&self) -> usize {
        Graph::num_vertices(self)
    }

    fn num_edges(&self) -> u64 {
        Graph::num_edges(self) as u64
    }

    fn adjacency(&self, v: VertexId) -> AdjList {
        self.neighbors(v).clone()
    }

    fn degree(&self, v: VertexId) -> usize {
        Graph::degree(self, v)
    }

    fn label(&self, v: VertexId) -> Option<Label> {
        Graph::label(self, v)
    }

    fn is_labeled(&self) -> bool {
        Graph::is_labeled(self)
    }

    fn heap_bytes(&self) -> usize {
        Graph::heap_bytes(self)
    }
}

impl AdjacencyStore for Csr {
    fn num_vertices(&self) -> usize {
        Csr::num_vertices(self)
    }

    fn num_edges(&self) -> u64 {
        Csr::num_edges(self) as u64
    }

    fn adjacency(&self, v: VertexId) -> AdjList {
        AdjList::from_sorted(self.neighbors(v).to_vec())
    }

    fn degree(&self, v: VertexId) -> usize {
        Csr::degree(self, v)
    }

    fn label(&self, _v: VertexId) -> Option<Label> {
        None
    }

    fn is_labeled(&self) -> bool {
        false
    }

    fn heap_bytes(&self) -> usize {
        Csr::heap_bytes(self)
    }
}

impl AdjacencyStore for CompressedGraph {
    fn num_vertices(&self) -> usize {
        CompressedGraph::num_vertices(self)
    }

    fn num_edges(&self) -> u64 {
        CompressedGraph::num_edges(self)
    }

    fn adjacency(&self, v: VertexId) -> AdjList {
        CompressedGraph::adjacency(self, v)
    }

    fn degree(&self, v: VertexId) -> usize {
        CompressedGraph::degree(self, v)
    }

    fn label(&self, v: VertexId) -> Option<Label> {
        CompressedGraph::label(self, v)
    }

    fn is_labeled(&self) -> bool {
        CompressedGraph::is_labeled(self)
    }

    fn heap_bytes(&self) -> usize {
        CompressedGraph::heap_bytes(self)
    }
}

impl<S: AdjacencyStore + ?Sized> AdjacencyStore for Arc<S> {
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    fn num_edges(&self) -> u64 {
        (**self).num_edges()
    }

    fn adjacency(&self, v: VertexId) -> AdjList {
        (**self).adjacency(v)
    }

    fn degree(&self, v: VertexId) -> usize {
        (**self).degree(v)
    }

    fn label(&self, v: VertexId) -> Option<Label> {
        (**self).label(v)
    }

    fn is_labeled(&self) -> bool {
        (**self).is_labeled()
    }

    fn heap_bytes(&self) -> usize {
        (**self).heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressed::write_compressed;
    use crate::gen;

    fn backends(g: &Graph) -> Vec<Box<dyn AdjacencyStore>> {
        let path = std::env::temp_dir().join(format!(
            "gthinker-store-{}-{}.gtc",
            std::process::id(),
            g.num_vertices()
        ));
        write_compressed(g, &path).unwrap();
        let c = CompressedGraph::open(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        vec![Box::new(g.clone()), Box::new(Csr::from_graph(g)), Box::new(c)]
    }

    #[test]
    fn all_backends_agree_on_a_random_graph() {
        let g = gen::gnp(200, 0.05, 11);
        let reference: Vec<AdjList> = g.vertices().map(|v| g.neighbors(v).clone()).collect();
        for store in backends(&g) {
            assert_eq!(store.num_vertices(), g.num_vertices());
            assert_eq!(store.num_edges(), g.num_edges() as u64);
            for v in g.vertices() {
                assert_eq!(store.adjacency(v), reference[v.index()], "Γ({v})");
                assert_eq!(store.degree(v), reference[v.index()].degree());
            }
        }
    }

    #[test]
    fn labels_flow_through_graph_and_compressed_backends() {
        let g = gen::random_labels(gen::gnp(50, 0.1, 5), 3, 1);
        for store in backends(&g) {
            if store.is_labeled() {
                for v in g.vertices() {
                    assert_eq!(store.label(v), g.label(v));
                }
            }
        }
    }
}
