//! The in-memory undirected graph `G = (V, E)`.
//!
//! A [`Graph`] stores one [`AdjList`] per vertex (dense IDs `0..n`) plus
//! optional per-vertex labels. This is the representation the simulated
//! HDFS hands to workers, and the ground-truth structure baselines and
//! tests mine against.

use crate::adj::AdjList;
use crate::ids::{Label, VertexId};

/// An undirected graph with dense vertex IDs and sorted adjacency lists.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    adj: Vec<AdjList>,
    labels: Option<Vec<Label>>,
}

impl Graph {
    /// Creates an empty graph with `n` isolated vertices.
    pub fn with_vertices(n: usize) -> Self {
        Graph { adj: vec![AdjList::new(); n], labels: None }
    }

    /// Builds an undirected graph from an edge list. Self-loops are
    /// dropped and duplicate edges collapse.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut nbrs: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            if u == v {
                continue;
            }
            assert!(u.index() < n && v.index() < n, "edge ({u}, {v}) out of range for n = {n}");
            nbrs[u.index()].push(v);
            nbrs[v.index()].push(u);
        }
        let adj = nbrs.into_iter().map(AdjList::from_unsorted).collect();
        Graph { adj, labels: None }
    }

    /// Builds directly from per-vertex adjacency lists.
    ///
    /// The caller is responsible for symmetry (`u ∈ Γ(v) ⇔ v ∈ Γ(u)`);
    /// [`Graph::validate_undirected`] checks it.
    pub fn from_adjacency(adj: Vec<AdjList>) -> Self {
        Graph { adj, labels: None }
    }

    /// Attaches per-vertex labels. Panics if the length mismatches.
    pub fn with_labels(mut self, labels: Vec<Label>) -> Self {
        assert_eq!(labels.len(), self.adj.len(), "one label per vertex required");
        self.labels = Some(labels);
        self
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges `|E|`.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(AdjList::degree).sum::<usize>() / 2
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// The adjacency list `Γ(v)`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &AdjList {
        &self.adj[v.index()]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v.index()].degree()
    }

    /// The label of `v`, if the graph is labeled.
    #[inline]
    pub fn label(&self, v: VertexId) -> Option<Label> {
        self.labels.as_ref().map(|ls| ls[v.index()])
    }

    /// True if the graph carries labels.
    pub fn is_labeled(&self) -> bool {
        self.labels.is_some()
    }

    /// All labels (if labeled), indexed by vertex.
    pub fn labels(&self) -> Option<&[Label]> {
        self.labels.as_deref()
    }

    /// Iterates over vertex IDs `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.adj.len() as u32).map(VertexId)
    }

    /// Iterates over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices()
            .flat_map(move |u| self.neighbors(u).greater_than(u).iter().map(move |&v| (u, v)))
    }

    /// Membership test for edge `{u, v}`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        u != v && self.adj[u.index()].contains(v)
    }

    /// Extracts the subgraph induced by `verts` with **original** IDs
    /// preserved: the result maps each kept vertex to the intersection of
    /// its list with `verts`.
    pub fn induced_adjacency(&self, verts: &[VertexId]) -> Vec<(VertexId, AdjList)> {
        let mut sorted = verts.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        sorted
            .iter()
            .map(|&v| {
                let inter = self.adj[v.index()].intersect_slice(&sorted);
                (v, AdjList::from_sorted(inter))
            })
            .collect()
    }

    /// Checks the undirectedness invariant; returns the first violating
    /// pair if any.
    pub fn validate_undirected(&self) -> Result<(), (VertexId, VertexId)> {
        for u in self.vertices() {
            for v in self.neighbors(u).iter() {
                if v.index() >= self.adj.len() || !self.adj[v.index()].contains(u) {
                    return Err((u, v));
                }
            }
        }
        Ok(())
    }

    /// Total heap bytes of the adjacency structure (simulator memory
    /// accounting).
    pub fn heap_bytes(&self) -> usize {
        let lists: usize = self.adj.iter().map(AdjList::heap_bytes).sum();
        lists
            + self.adj.capacity() * std::mem::size_of::<AdjList>()
            + self.labels.as_ref().map_or(0, |l| l.capacity() * std::mem::size_of::<Label>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        // 0 - 1 - 2
        Graph::from_edges(3, &[(VertexId(0), VertexId(1)), (VertexId(1), VertexId(2))])
    }

    #[test]
    fn from_edges_builds_symmetric_lists() {
        let g = path3();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.has_edge(VertexId(1), VertexId(0)));
        assert!(!g.has_edge(VertexId(0), VertexId(2)));
        g.validate_undirected().unwrap();
    }

    #[test]
    fn self_loops_and_duplicates_are_dropped() {
        let g = Graph::from_edges(
            2,
            &[(VertexId(0), VertexId(0)), (VertexId(0), VertexId(1)), (VertexId(1), VertexId(0))],
        );
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(VertexId(0), VertexId(0)));
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = path3();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(VertexId(0), VertexId(1)), (VertexId(1), VertexId(2))]);
    }

    #[test]
    fn induced_adjacency_intersects_lists() {
        // Triangle 0-1-2 plus pendant 3 attached to 2.
        let g = Graph::from_edges(
            4,
            &[
                (VertexId(0), VertexId(1)),
                (VertexId(1), VertexId(2)),
                (VertexId(0), VertexId(2)),
                (VertexId(2), VertexId(3)),
            ],
        );
        let sub = g.induced_adjacency(&[VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(sub.len(), 3);
        for (v, adj) in &sub {
            assert_eq!(adj.degree(), 2, "vertex {v} should keep both triangle edges");
        }
    }

    #[test]
    fn labels_round_trip() {
        let g = path3().with_labels(vec![Label(0), Label(1), Label(0)]);
        assert!(g.is_labeled());
        assert_eq!(g.label(VertexId(1)), Some(Label(1)));
        assert_eq!(g.labels().unwrap().len(), 3);
    }

    #[test]
    fn validate_detects_asymmetry() {
        let adj = vec![
            AdjList::from_unsorted(vec![VertexId(1)]),
            AdjList::new(), // 1 does not list 0 back
        ];
        let g = Graph::from_adjacency(adj);
        assert_eq!(g.validate_undirected(), Err((VertexId(0), VertexId(1))));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = Graph::from_edges(2, &[(VertexId(0), VertexId(5))]);
    }
}
