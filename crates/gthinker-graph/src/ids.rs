//! Identifier newtypes used across the workspace.
//!
//! The paper orders vertices by ID to build the set-enumeration tree
//! (Fig. 1): a vertex set `S` is only extended with vertices whose ID is
//! larger than every vertex already in `S`. Making [`VertexId`] `Ord`
//! therefore matters semantically, not just for container use.

use std::fmt;

/// A vertex identifier.
///
/// G-thinker hashes vertices to machines by ID and compares IDs to avoid
/// redundant subgraph enumeration, so `VertexId` is `Copy`, `Ord` and
/// cheap to hash. `u32` supports graphs of up to ~4.3 billion vertices,
/// larger than any graph in the paper's evaluation (Friendster: 65.6M).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The smallest possible ID.
    pub const MIN: VertexId = VertexId(0);
    /// The largest possible ID, usable as a sentinel.
    pub const MAX: VertexId = VertexId(u32::MAX);

    /// Returns the raw index value, for use as a dense array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an ID from a dense array index.
    ///
    /// # Panics
    /// Panics if `i` exceeds `u32::MAX`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "vertex index out of range");
        VertexId(i as u32)
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<VertexId> for u32 {
    #[inline]
    fn from(v: VertexId) -> Self {
        v.0
    }
}

/// A vertex label, used by labeled applications such as subgraph matching.
///
/// The paper's `Trimmer` prunes data-graph vertices whose labels do not
/// appear in the query graph; labels are small dense integers here.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Label(pub u16);

impl Label {
    /// Returns the raw label value.
    #[inline]
    pub fn value(self) -> u16 {
        self.0
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u16> for Label {
    #[inline]
    fn from(v: u16) -> Self {
        Label(v)
    }
}

/// Identifier of a simulated worker machine in the cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct WorkerId(pub u16);

impl WorkerId {
    /// Returns the raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// A framework-wide task identifier.
///
/// Per §V-B of the paper, a task ID concatenates a 16-bit comper ID with
/// a 48-bit per-comper sequence number, so the response-receiving thread
/// can route a readiness notification to the comper that owns the
/// pending task.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TaskId(pub u64);

impl TaskId {
    /// Builds an ID from a comper index and that comper's sequence
    /// number.
    ///
    /// # Panics
    /// Panics in debug builds if `seq` exceeds 48 bits.
    #[inline]
    pub fn new(comper: u16, seq: u64) -> Self {
        debug_assert!(seq < (1u64 << 48), "task sequence number overflow");
        TaskId(((comper as u64) << 48) | seq)
    }

    /// The comper that created (and owns) this task.
    #[inline]
    pub fn comper(self) -> u16 {
        (self.0 >> 48) as u16
    }

    /// The per-comper sequence number.
    #[inline]
    pub fn seq(self) -> u64 {
        self.0 & ((1u64 << 48) - 1)
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}:{}", self.comper(), self.seq())
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.comper(), self.seq())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_id_packs_and_unpacks() {
        let t = TaskId::new(513, 0x0000_1234_5678_9abc);
        assert_eq!(t.comper(), 513);
        assert_eq!(t.seq(), 0x0000_1234_5678_9abc);
        assert_eq!(format!("{t:?}"), "t513:20015998343868");
    }

    #[test]
    fn task_id_boundaries() {
        let t = TaskId::new(u16::MAX, (1u64 << 48) - 1);
        assert_eq!(t.comper(), u16::MAX);
        assert_eq!(t.seq(), (1u64 << 48) - 1);
        let z = TaskId::new(0, 0);
        assert_eq!(z.0, 0);
    }

    #[test]
    fn vertex_id_ordering_follows_raw_value() {
        assert!(VertexId(1) < VertexId(2));
        assert!(VertexId::MIN < VertexId::MAX);
        assert_eq!(VertexId(7).index(), 7);
        assert_eq!(VertexId::from_index(9), VertexId(9));
    }

    #[test]
    fn display_and_debug_formats() {
        assert_eq!(VertexId(3).to_string(), "3");
        assert_eq!(format!("{:?}", VertexId(3)), "v3");
        assert_eq!(Label(5).to_string(), "5");
        assert_eq!(format!("{:?}", Label(5)), "L5");
        assert_eq!(WorkerId(2).to_string(), "w2");
    }

    #[test]
    fn conversions_round_trip() {
        let v: VertexId = 42u32.into();
        let raw: u32 = v.into();
        assert_eq!(raw, 42);
        let l: Label = 7u16.into();
        assert_eq!(l.value(), 7);
    }
}
