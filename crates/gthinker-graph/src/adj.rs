//! Sorted adjacency lists and the set operations subgraph mining relies on.
//!
//! The paper writes `Γ(v)` for the neighbor set of `v` and `Γ_>(v)` for
//! the neighbors with IDs larger than `v` (used to walk the
//! set-enumeration tree of Fig. 1 without revisiting vertex sets).
//! [`AdjList`] keeps neighbors sorted ascending so that `Γ_>` is a binary
//! search and common-neighbor computation is a linear merge.

use crate::ids::VertexId;
use std::sync::Arc;

/// A sorted, deduplicated adjacency list `Γ(v)`.
///
/// Immutable once built; workers share adjacency lists across tasks via
/// `Arc<AdjList>` (the remote vertex cache hands out clones of the `Arc`,
/// never copies of the list).
///
/// ```
/// use gthinker_graph::adj::AdjList;
/// use gthinker_graph::ids::VertexId;
///
/// let adj = AdjList::from_unsorted(vec![VertexId(5), VertexId(2), VertexId(9)]);
/// assert_eq!(adj.degree(), 3);
/// assert!(adj.contains(VertexId(5)));
/// // Γ_>(v): neighbors larger than a pivot — the set-enumeration rule.
/// assert_eq!(adj.greater_than(VertexId(4)), &[VertexId(5), VertexId(9)]);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AdjList {
    neighbors: Vec<VertexId>,
}

impl AdjList {
    /// Creates an empty adjacency list.
    pub fn new() -> Self {
        AdjList { neighbors: Vec::new() }
    }

    /// Builds from an arbitrary neighbor vector: sorts and deduplicates.
    pub fn from_unsorted(mut neighbors: Vec<VertexId>) -> Self {
        neighbors.sort_unstable();
        neighbors.dedup();
        AdjList { neighbors }
    }

    /// Builds from a vector the caller guarantees is sorted ascending and
    /// free of duplicates.
    ///
    /// # Panics
    /// Panics in debug builds if the invariant does not hold.
    pub fn from_sorted(neighbors: Vec<VertexId>) -> Self {
        debug_assert!(
            neighbors.windows(2).all(|w| w[0] < w[1]),
            "from_sorted requires strictly ascending neighbors"
        );
        AdjList { neighbors }
    }

    /// Number of neighbors, i.e. the degree of the owning vertex.
    #[inline]
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// True if the list has no neighbors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// The sorted neighbor slice.
    #[inline]
    pub fn as_slice(&self) -> &[VertexId] {
        &self.neighbors
    }

    /// Iterates over neighbors in ascending ID order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.neighbors.iter().copied()
    }

    /// Membership test by binary search: is `u ∈ Γ(v)`?
    #[inline]
    pub fn contains(&self, u: VertexId) -> bool {
        self.neighbors.binary_search(&u).is_ok()
    }

    /// `Γ_>(v)`: the suffix of neighbors with IDs strictly greater than
    /// `pivot`. Used to extend set-enumeration tree nodes.
    pub fn greater_than(&self, pivot: VertexId) -> &[VertexId] {
        let start = self.neighbors.partition_point(|&u| u <= pivot);
        &self.neighbors[start..]
    }

    /// Linear-merge intersection with another sorted list; the workhorse
    /// of clique extension (`ext(S ∪ u) = ext(S) ∩ Γ(u)`).
    pub fn intersect(&self, other: &AdjList) -> Vec<VertexId> {
        intersect_sorted(&self.neighbors, other.as_slice())
    }

    /// Intersection with an arbitrary sorted slice.
    pub fn intersect_slice(&self, other: &[VertexId]) -> Vec<VertexId> {
        intersect_sorted(&self.neighbors, other)
    }

    /// Buffer-reusing form of [`AdjList::intersect`]: clears `out` and
    /// fills it with the intersection, so a caller looping over many
    /// lists allocates once instead of once per intersection.
    pub fn intersect_into(&self, other: &AdjList, out: &mut Vec<VertexId>) {
        intersect_sorted_into(&self.neighbors, other.as_slice(), out);
    }

    /// Buffer-reusing form of [`AdjList::intersect_slice`].
    pub fn intersect_slice_into(&self, other: &[VertexId], out: &mut Vec<VertexId>) {
        intersect_sorted_into(&self.neighbors, other, out);
    }

    /// Counts (without materializing) the intersection size with a sorted
    /// slice; the inner loop of triangle counting.
    pub fn intersection_count(&self, other: &[VertexId]) -> usize {
        count_intersect_sorted(&self.neighbors, other)
    }

    /// Retains only neighbors for which `keep` returns true (used by
    /// [`crate::trim::Trimmer`] implementations).
    pub fn retain(&mut self, mut keep: impl FnMut(VertexId) -> bool) {
        self.neighbors.retain(|&u| keep(u));
    }

    /// Consumes the list and returns the underlying sorted vector.
    pub fn into_vec(self) -> Vec<VertexId> {
        self.neighbors
    }

    /// Heap bytes occupied by this list (for the simulator's memory
    /// accounting).
    pub fn heap_bytes(&self) -> usize {
        self.neighbors.capacity() * std::mem::size_of::<VertexId>()
    }
}

impl FromIterator<VertexId> for AdjList {
    fn from_iter<T: IntoIterator<Item = VertexId>>(iter: T) -> Self {
        AdjList::from_unsorted(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a AdjList {
    type Item = VertexId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, VertexId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.neighbors.iter().copied()
    }
}

/// A vertex paired with its adjacency list — the unit the distributed
/// key-value store serves (`(v, Γ(v))` in the paper).
pub type SharedAdj = Arc<AdjList>;

/// Merge-intersects two strictly ascending slices into a new vector.
///
/// Uses galloping (exponential search) when one side is much shorter,
/// which matters when intersecting a hub's list with a small candidate
/// set.
pub fn intersect_sorted(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::new();
    intersect_sorted_into(a, b, &mut out);
    out
}

/// Merge-intersects two strictly ascending slices into `out` (cleared
/// first), reusing its capacity across calls.
pub fn intersect_sorted_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    out.clear();
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    out.reserve(short.len());
    // Galloping pays off only with a large size imbalance.
    if long.len() / 32 > short.len() {
        let mut lo = 0usize;
        for &x in short {
            match long[lo..].binary_search(&x) {
                Ok(i) => {
                    out.push(x);
                    lo += i + 1;
                }
                Err(i) => lo += i,
            }
            if lo >= long.len() {
                break;
            }
        }
        return;
    }
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Counts the intersection of two strictly ascending slices.
pub fn count_intersect_sorted(a: &[VertexId], b: &[VertexId]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if long.len() / 32 > short.len() {
        let mut n = 0usize;
        let mut lo = 0usize;
        for &x in short {
            match long[lo..].binary_search(&x) {
                Ok(i) => {
                    n += 1;
                    lo += i + 1;
                }
                Err(i) => lo += i,
            }
            if lo >= long.len() {
                break;
            }
        }
        return n;
    }
    let mut n = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<VertexId> {
        v.iter().map(|&x| VertexId(x)).collect()
    }

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let a = AdjList::from_unsorted(ids(&[5, 1, 3, 1, 5]));
        assert_eq!(a.as_slice(), ids(&[1, 3, 5]).as_slice());
        assert_eq!(a.degree(), 3);
    }

    #[test]
    fn contains_uses_binary_search() {
        let a = AdjList::from_unsorted(ids(&[2, 4, 6, 8]));
        assert!(a.contains(VertexId(4)));
        assert!(!a.contains(VertexId(5)));
    }

    #[test]
    fn greater_than_returns_strict_suffix() {
        let a = AdjList::from_unsorted(ids(&[1, 3, 5, 7]));
        assert_eq!(a.greater_than(VertexId(3)), ids(&[5, 7]).as_slice());
        assert_eq!(a.greater_than(VertexId(4)), ids(&[5, 7]).as_slice());
        assert_eq!(a.greater_than(VertexId(0)), a.as_slice());
        assert!(a.greater_than(VertexId(7)).is_empty());
    }

    #[test]
    fn intersect_matches_naive() {
        let a = AdjList::from_unsorted(ids(&[1, 2, 3, 5, 8, 13]));
        let b = AdjList::from_unsorted(ids(&[2, 3, 4, 5, 13, 21]));
        assert_eq!(a.intersect(&b), ids(&[2, 3, 5, 13]));
        assert_eq!(a.intersection_count(b.as_slice()), 4);
    }

    #[test]
    fn galloping_path_taken_for_skewed_sizes() {
        let long: Vec<VertexId> = (0..10_000).map(VertexId).collect();
        let short = ids(&[3, 5_000, 9_999, 20_000]);
        let a = AdjList::from_sorted(long);
        assert_eq!(a.intersect_slice(&short), ids(&[3, 5_000, 9_999]));
        assert_eq!(a.intersection_count(&short), 3);
    }

    #[test]
    fn intersect_into_reuses_buffer_and_matches() {
        let a = AdjList::from_unsorted(ids(&[1, 2, 3, 5, 8, 13]));
        let b = AdjList::from_unsorted(ids(&[2, 3, 4, 5, 13, 21]));
        let mut buf = ids(&[99, 98]); // stale contents must be cleared
        a.intersect_into(&b, &mut buf);
        assert_eq!(buf, ids(&[2, 3, 5, 13]));
        a.intersect_slice_into(&ids(&[3, 21]), &mut buf);
        assert_eq!(buf, ids(&[3]));
        // Galloping path through the same entry point.
        let long = AdjList::from_sorted((0..10_000).map(VertexId).collect());
        long.intersect_slice_into(&ids(&[3, 5_000, 20_000]), &mut buf);
        assert_eq!(buf, ids(&[3, 5_000]));
    }

    #[test]
    fn empty_intersections() {
        let a = AdjList::new();
        let b = AdjList::from_unsorted(ids(&[1, 2]));
        assert!(a.intersect(&b).is_empty());
        assert_eq!(b.intersection_count(a.as_slice()), 0);
    }

    #[test]
    fn retain_filters_in_place() {
        let mut a = AdjList::from_unsorted(ids(&[1, 2, 3, 4, 5, 6]));
        a.retain(|v| v.0 % 2 == 0);
        assert_eq!(a.as_slice(), ids(&[2, 4, 6]).as_slice());
    }
}
