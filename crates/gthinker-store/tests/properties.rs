//! Property-based tests for the vertex cache: under arbitrary
//! interleavings of OP1–OP4, lock counts never go negative, sizes
//! reconcile, and no locked vertex is ever evicted.

use gthinker_graph::adj::AdjList;
use gthinker_graph::ids::{TaskId, VertexId};
use gthinker_store::cache::{CacheConfig, RequestOutcome, VertexCache};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Request(u8),
    Respond(u8),
    Release(u8),
    Gc,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..32).prop_map(Op::Request),
        (0u8..32).prop_map(Op::Respond),
        (0u8..32).prop_map(Op::Release),
        Just(Op::Gc),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A reference model tracks, per vertex, whether it is requested /
    /// cached and how many locks the tasks hold; the cache must agree
    /// at every step.
    #[test]
    fn cache_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let cache = VertexCache::new(CacheConfig {
            num_buckets: 8,
            capacity: 4, // small: GC constantly active
            alpha: 0.2,
            counter_delta: 1,
            ..CacheConfig::default()
        });
        let mut handle = cache.counter_handle();
        // Model: per vertex (requested, cached, locks).
        #[derive(Default, Clone, Copy)]
        struct M { requested: bool, cached: bool, locks: u32 }
        let mut model = [M::default(); 32];
        let mut next_task = 0u64;
        for op in ops {
            match op {
                Op::Request(i) => {
                    let v = VertexId(i as u32);
                    next_task += 1;
                    match cache.request(v, TaskId(next_task), &mut handle) {
                        RequestOutcome::Hit(_) => {
                            prop_assert!(model[i as usize].cached, "hit must mean cached");
                            model[i as usize].locks += 1;
                        }
                        RequestOutcome::AlreadyRequested => {
                            prop_assert!(model[i as usize].requested);
                            model[i as usize].locks += 1;
                        }
                        RequestOutcome::MustRequest => {
                            prop_assert!(!model[i as usize].requested);
                            prop_assert!(!model[i as usize].cached);
                            model[i as usize].requested = true;
                            model[i as usize].locks += 1;
                        }
                    }
                }
                Op::Respond(i) => {
                    let v = VertexId(i as u32);
                    let waiters = cache.insert_response(v, AdjList::new());
                    if model[i as usize].requested {
                        let waiters = waiters.expect("open request must consume the response");
                        prop_assert_eq!(waiters.len() as u32, model[i as usize].locks,
                            "lock count transfers from R-table");
                        model[i as usize].requested = false;
                        model[i as usize].cached = true;
                    } else {
                        prop_assert!(waiters.is_none(), "stale responses are dropped");
                    }
                }
                Op::Release(i) => {
                    let v = VertexId(i as u32);
                    // Only release when the model says a lock is held on
                    // a *cached* vertex (the framework guarantees this).
                    if model[i as usize].cached && model[i as usize].locks > 0 {
                        cache.release(v);
                        model[i as usize].locks -= 1;
                    }
                }
                Op::Gc => {
                    let _ = cache.gc_pass(&mut handle);
                    // GC may only evict unlocked cached vertices; sync the
                    // model by probing those, and assert the rest survive.
                    for (i, m) in model.iter_mut().enumerate() {
                        let present = cache.get_locked(VertexId(i as u32)).is_some();
                        if m.cached && m.locks == 0 {
                            m.cached = present;
                        } else if m.cached {
                            prop_assert!(present, "GC evicted a locked vertex");
                        }
                    }
                }
            }
            // Invariants after every operation:
            handle.flush();
            let model_size: i64 = model
                .iter()
                .filter(|m| m.requested || m.cached)
                .count() as i64;
            prop_assert_eq!(cache.exact_size() as i64, model_size, "size reconciles");
            prop_assert_eq!(cache.approx_size(), model_size, "counter exact at δ=1");
            for (i, m) in model.iter().enumerate() {
                let v = VertexId(i as u32);
                if m.cached {
                    prop_assert!(cache.get_locked(v).is_some(), "cached vertex present");
                }
            }
        }
    }

    /// The approximate counter's drift is bounded by handles × δ.
    #[test]
    fn approx_counter_drift_is_bounded(
        deltas in proptest::collection::vec(-20i64..20, 1..200),
        threshold in 1u32..16,
    ) {
        let c = gthinker_store::counter::ApproxCounter::new();
        let mut h = c.handle(threshold);
        let mut true_value = 0i64;
        for d in deltas {
            h.add(d);
            true_value += d;
            let drift = (c.read() - true_value).abs();
            prop_assert!(drift < threshold as i64 + 20, "drift {drift} vs δ {threshold}");
        }
        h.flush();
        prop_assert_eq!(c.read(), true_value);
    }

    /// Spawn batches partition the local table for any batch size.
    #[test]
    fn spawn_batches_partition(n in 1usize..500, batch in 1usize..64) {
        use gthinker_store::local::LocalTable;
        let records = (0..n as u32)
            .map(|i| (VertexId(i), AdjList::new()))
            .collect();
        let t = LocalTable::new(records);
        let mut seen = Vec::new();
        loop {
            let b = t.claim_spawn_batch(batch).to_vec();
            if b.is_empty() { break; }
            prop_assert!(b.len() <= batch);
            seen.extend(b);
        }
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), n);
        prop_assert_eq!(t.unspawned(), 0);
    }
}
