//! The remote-vertex cache `T_cache` (§V-A of the paper).
//!
//! `T_cache` is organized as an array of `k` buckets, each protected by
//! its own mutex; a vertex `v` lives in bucket `hash(v) mod k`, so
//! operations on vertices in different buckets proceed fully in
//! parallel. Each bucket holds three tables:
//!
//! * **Γ-table** — cached `(v, Γ(v))` entries with a `lock_count`
//!   tracking how many tasks currently hold `v`;
//! * **Z-table** — the subset of Γ-table entries whose `lock_count` is
//!   zero, i.e. safe to evict (lets GC scan only candidates);
//! * **R-table** — vertices whose pull request is in flight, with the
//!   IDs of the tasks waiting for the response (its length plays the
//!   role of `lock_count`, and prevents duplicate requests).
//!
//! Four atomic (per-bucket) operations cover the vertex lifecycle:
//! OP1 request, OP2 response insertion, OP3 release, OP4 GC eviction.
//!
//! Size accounting: `s_cache = |Γ-tables| + |R-tables|` is maintained
//! approximately via [`CounterHandle`]s. GC is *lazy*: it evicts only
//! when `s_cache > (1 + α) · c_cache`, removing up to
//! `s_cache − c_cache` vertices per pass in round-robin bucket order.

use crate::counter::{ApproxCounter, CounterHandle};
use gthinker_graph::adj::{AdjList, SharedAdj};
use gthinker_graph::hash::{FastMap, FastSet};
use gthinker_graph::ids::{TaskId, VertexId};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for [`VertexCache`]; defaults follow the paper.
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Number of buckets `k`. Paper default: 10,000.
    pub num_buckets: usize,
    /// Capacity `c_cache` in vertices. Paper default: 2M.
    pub capacity: usize,
    /// Overflow tolerance `α`. Paper default: 0.2.
    pub alpha: f64,
    /// Per-thread counter commit threshold δ. Paper default: 10.
    pub counter_delta: u32,
    /// How long a pull request may stay unanswered before
    /// [`VertexCache::collect_timed_out`] schedules a re-request.
    /// Retries back off exponentially from this base.
    pub pull_timeout: Duration,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            num_buckets: 10_000,
            capacity: 2_000_000,
            alpha: 0.2,
            counter_delta: 10,
            pull_timeout: Duration::from_millis(500),
        }
    }
}

/// Outcome of OP1 (a task requesting `Γ(v)`).
#[derive(Clone, Debug)]
pub enum RequestOutcome {
    /// Case 1: `v` was cached; `lock_count` has been incremented and the
    /// adjacency list is immediately usable.
    Hit(SharedAdj),
    /// Case 2.2: `v` was already requested by some other task; this
    /// task's ID has been queued on the R-table entry and it must wait.
    AlreadyRequested,
    /// Case 2.1: `v` is requested for the first time; an R-table entry
    /// was created and **the caller must send the pull request**.
    MustRequest,
}

/// Aggregate cache statistics (monotonic counters).
#[derive(Debug, Default)]
pub struct CacheStats {
    /// OP1 case 1 outcomes.
    pub hits: AtomicU64,
    /// OP1 case 2.2 outcomes.
    pub shared_waits: AtomicU64,
    /// OP1 case 2.1 outcomes (actual network requests).
    pub misses: AtomicU64,
    /// Vertices evicted by GC.
    pub evictions: AtomicU64,
    /// GC passes that ran (i.e. overflow observed).
    pub gc_passes: AtomicU64,
    /// Pull requests that timed out and were scheduled for re-request.
    pub retries: AtomicU64,
    /// OP2 calls that found no R-table entry (duplicate or late
    /// responses, dropped idempotently).
    pub stale_responses: AtomicU64,
}

impl CacheStats {
    /// Point-in-time copy of the counters as a named plain-data struct.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            shared_waits: self.shared_waits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            gc_passes: self.gc_passes.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            stale_responses: self.stale_responses.load(Ordering::Relaxed),
        }
    }
}

/// Named snapshot of [`CacheStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// OP1 case 1 outcomes (Γ-table hits).
    pub hits: u64,
    /// OP1 case 2.2 outcomes (piggybacked on an in-flight request).
    pub shared_waits: u64,
    /// OP1 case 2.1 outcomes (actual network requests).
    pub misses: u64,
    /// Vertices evicted by GC.
    pub evictions: u64,
    /// GC passes that ran (i.e. overflow observed).
    pub gc_passes: u64,
    /// Pull requests that timed out and were re-requested.
    pub retries: u64,
    /// Duplicate/late responses dropped by OP2.
    pub stale_responses: u64,
}

impl CacheSnapshot {
    /// Field-wise sum, for aggregating across workers.
    pub fn merge(&mut self, other: &CacheSnapshot) {
        self.hits += other.hits;
        self.shared_waits += other.shared_waits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.gc_passes += other.gc_passes;
        self.retries += other.retries;
        self.stale_responses += other.stale_responses;
    }

    /// Hit ratio over all OP1 calls (0 when no requests were made).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.shared_waits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A Γ-table entry.
struct GammaEntry {
    adj: SharedAdj,
    lock_count: u32,
}

/// An R-table entry: the tasks waiting for the in-flight pull, plus
/// the loss-tolerance state driving re-requests.
struct PullRequest {
    waiters: Vec<TaskId>,
    /// When the current attempt is declared lost.
    deadline: Instant,
    /// Completed (timed-out) attempts; drives exponential backoff.
    attempts: u32,
}

/// One bucket: Γ-table, Z-table and R-table under a single mutex.
#[derive(Default)]
struct Bucket {
    gamma: FastMap<VertexId, GammaEntry>,
    zero: FastSet<VertexId>,
    requests: FastMap<VertexId, PullRequest>,
}

/// The concurrent remote-vertex cache.
///
/// ```
/// use gthinker_store::cache::{CacheConfig, RequestOutcome, VertexCache};
/// use gthinker_graph::adj::AdjList;
/// use gthinker_graph::ids::{TaskId, VertexId};
///
/// let cache = VertexCache::new(CacheConfig::default());
/// let mut counter = cache.counter_handle();
/// // OP1: first request misses — the caller must transmit it.
/// let outcome = cache.request(VertexId(7), TaskId(1), &mut counter);
/// assert!(matches!(outcome, RequestOutcome::MustRequest));
/// // OP2: the response arrives and wakes the waiting task.
/// let waiters = cache.insert_response(VertexId(7), AdjList::new());
/// assert_eq!(waiters, Some(vec![TaskId(1)]));
/// // A duplicated response is dropped idempotently.
/// assert_eq!(cache.insert_response(VertexId(7), AdjList::new()), None);
/// // OP3: the task releases its hold after computing.
/// cache.release(VertexId(7));
/// ```
pub struct VertexCache {
    buckets: Box<[Mutex<Bucket>]>,
    size: Arc<ApproxCounter>,
    config: CacheConfig,
    gc_cursor: AtomicUsize,
    stats: CacheStats,
    /// Exact count of open R-table entries; lets the per-tick timeout
    /// scan exit in one atomic load when no pull is in flight.
    in_flight: AtomicUsize,
}

impl VertexCache {
    /// Creates a cache with the given configuration.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.num_buckets >= 1, "need at least one bucket");
        assert!(config.alpha >= 0.0, "alpha must be non-negative");
        let buckets = (0..config.num_buckets)
            .map(|_| Mutex::new(Bucket::default()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        VertexCache {
            buckets,
            size: ApproxCounter::new(),
            config,
            gc_cursor: AtomicUsize::new(0),
            stats: CacheStats::default(),
            in_flight: AtomicUsize::new(0),
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Cache statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Creates a per-thread handle for `s_cache` updates; every comper
    /// and the GC thread own one.
    pub fn counter_handle(&self) -> CounterHandle {
        self.size.handle(self.config.counter_delta)
    }

    /// The committed (approximate) `s_cache` value.
    pub fn approx_size(&self) -> i64 {
        self.size.read()
    }

    /// True when `s_cache > (1 + α) · c_cache` — the condition under
    /// which compers must stop fetching **new** tasks (§V-B) and GC must
    /// evict.
    pub fn over_limit(&self) -> bool {
        self.size.read() as f64 > (1.0 + self.config.alpha) * self.config.capacity as f64
    }

    #[inline]
    fn bucket_of(&self, v: VertexId) -> &Mutex<Bucket> {
        let i = gthinker_graph::hash::hash_u64(v.0 as u64) as usize % self.buckets.len();
        &self.buckets[i]
    }

    /// **OP1** — task `task` requests `Γ(v)`.
    ///
    /// On a Γ-table hit the entry's `lock_count` is incremented (and `v`
    /// leaves the Z-table if it was there). Otherwise the task is queued
    /// on the R-table entry; if the entry is new, `s_cache` grows by one
    /// through `counter` and the caller must transmit the request.
    pub fn request(
        &self,
        v: VertexId,
        task: TaskId,
        counter: &mut CounterHandle,
    ) -> RequestOutcome {
        let mut b = self.bucket_of(v).lock();
        // Split borrows: the Γ- and Z-table updates touch disjoint
        // fields, so the hit path is a single branch.
        let Bucket { gamma, zero, .. } = &mut *b;
        if let Some(entry) = gamma.get_mut(&v) {
            if entry.lock_count == 0 {
                zero.remove(&v);
            }
            entry.lock_count += 1;
            let adj = Arc::clone(&entry.adj);
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            return RequestOutcome::Hit(adj);
        }
        match b.requests.get_mut(&v) {
            Some(req) => {
                req.waiters.push(task);
                self.stats.shared_waits.fetch_add(1, Ordering::Relaxed);
                RequestOutcome::AlreadyRequested
            }
            None => {
                b.requests.insert(
                    v,
                    PullRequest {
                        waiters: vec![task],
                        deadline: Instant::now() + self.config.pull_timeout,
                        attempts: 0,
                    },
                );
                self.in_flight.fetch_add(1, Ordering::Relaxed);
                counter.incr();
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                RequestOutcome::MustRequest
            }
        }
    }

    /// **OP2** — the response receiver delivers `(v, Γ(v))`.
    ///
    /// Moves `v` from the R-table to the Γ-table, transferring the
    /// waiting tasks' hold as the initial `lock_count`, and returns the
    /// waiter IDs so the receiver can notify their pending tasks.
    /// `s_cache` is unchanged (R-entry becomes a Γ-entry).
    ///
    /// **Idempotent**: if no R-table entry exists (a duplicated or late
    /// response — the fault-injected wire produces both, and retries
    /// can race the original answer), the response is dropped and
    /// `None` returned so the caller knows the pull was *not* consumed
    /// and must not adjust its outstanding-pull accounting. Adjacency
    /// payloads are immutable per vertex, so whichever copy wins
    /// installs identical data.
    pub fn insert_response(&self, v: VertexId, adj: AdjList) -> Option<Vec<TaskId>> {
        let mut b = self.bucket_of(v).lock();
        let Some(req) = b.requests.remove(&v) else {
            self.stats.stale_responses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        debug_assert!(!b.gamma.contains_key(&v), "response for already-cached vertex");
        let waiters = req.waiters;
        let lock_count = waiters.len() as u32;
        b.gamma.insert(v, GammaEntry { adj: Arc::new(adj), lock_count });
        if lock_count == 0 {
            b.zero.insert(v);
        }
        Some(waiters)
    }

    /// Number of open R-table entries (pulls awaiting a response).
    pub fn pulls_in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Scans the R-table for pulls whose deadline has passed and
    /// returns their vertices so the caller can re-send the requests.
    /// Each returned entry has its deadline pushed out by an
    /// exponential backoff (capped at `64 × pull_timeout`) plus a
    /// deterministic per-vertex jitter, so a burst of losses does not
    /// re-synchronize into a retry storm.
    ///
    /// Costs one atomic load when no pull is in flight — the common
    /// case on every worker tick.
    pub fn collect_timed_out(&self, now: Instant) -> Vec<VertexId> {
        if self.in_flight.load(Ordering::Relaxed) == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for bucket in self.buckets.iter() {
            let mut b = bucket.lock();
            if b.requests.is_empty() {
                continue;
            }
            for (v, req) in b.requests.iter_mut() {
                if req.deadline <= now {
                    req.attempts += 1;
                    req.deadline = now + retry_backoff(self.config.pull_timeout, req.attempts, *v);
                    out.push(*v);
                }
            }
        }
        if !out.is_empty() {
            self.stats.retries.fetch_add(out.len() as u64, Ordering::Relaxed);
        }
        out
    }

    /// Fetches the adjacency list of a vertex the calling task already
    /// holds a lock on (used when a pending task becomes ready and its
    /// comper assembles the `frontier`). Does **not** change lock
    /// counts.
    pub fn get_locked(&self, v: VertexId) -> Option<SharedAdj> {
        let b = self.bucket_of(v).lock();
        b.gamma.get(&v).map(|e| Arc::clone(&e.adj))
    }

    /// **OP3** — a task releases its hold on `v` after finishing an
    /// iteration. When the `lock_count` reaches zero, `v` enters the
    /// Z-table and becomes evictable.
    ///
    /// # Panics
    /// Panics if `v` is not cached or not locked — that would mean a
    /// release without a matching request, a framework bug.
    pub fn release(&self, v: VertexId) {
        let mut b = self.bucket_of(v).lock();
        let entry = b.gamma.get_mut(&v).expect("release of uncached vertex");
        assert!(entry.lock_count > 0, "release without matching request");
        entry.lock_count -= 1;
        if entry.lock_count == 0 {
            b.zero.insert(v);
        }
    }

    /// **OP4** — one lazy GC pass.
    ///
    /// If `s_cache ≤ (1 + α) · c_cache` this returns 0 immediately
    /// (releasing the GC thread's CPU core, per the paper). Otherwise it
    /// walks buckets round-robin, evicting Z-table vertices until
    /// `s_cache − c_cache` vertices are gone or all buckets were
    /// scanned once (locked tasks may block full eviction; later passes
    /// catch up once tasks release).
    pub fn gc_pass(&self, counter: &mut CounterHandle) -> usize {
        if !self.over_limit() {
            return 0;
        }
        self.stats.gc_passes.fetch_add(1, Ordering::Relaxed);
        let target = (self.size.read() - self.config.capacity as i64).max(0) as usize;
        let mut evicted = 0usize;
        let k = self.buckets.len();
        for _ in 0..k {
            if evicted >= target {
                break;
            }
            let i = self.gc_cursor.fetch_add(1, Ordering::Relaxed) % k;
            let mut b = self.buckets[i].lock();
            // Drain up to the remaining quota in one pass over the
            // Z-table instead of restarting its iterator per victim
            // (each `iter().next()` re-probes from slot 0, turning a
            // batch eviction quadratic in the bucket's Z-table size).
            let victims: Vec<VertexId> = b.zero.iter().copied().take(target - evicted).collect();
            for v in victims {
                b.zero.remove(&v);
                let removed = b.gamma.remove(&v);
                debug_assert!(removed.is_some(), "Z-table entry missing from Γ-table");
                counter.decr();
                evicted += 1;
            }
        }
        self.stats.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
        evicted
    }

    /// Exact total entries across Γ-tables and R-tables. O(k); test and
    /// diagnostics only.
    pub fn exact_size(&self) -> usize {
        self.buckets
            .iter()
            .map(|b| {
                let b = b.lock();
                b.gamma.len() + b.requests.len()
            })
            .sum()
    }

    /// Exact number of evictable (zero-locked) vertices. O(k); tests.
    pub fn exact_evictable(&self) -> usize {
        self.buckets.iter().map(|b| b.lock().zero.len()).sum()
    }

    /// Approximate heap bytes of cached adjacency data.
    pub fn heap_bytes(&self) -> usize {
        self.buckets
            .iter()
            .map(|b| {
                let b = b.lock();
                b.gamma.values().map(|e| e.adj.heap_bytes()).sum::<usize>()
            })
            .sum()
    }
}

/// Deadline extension for the `attempts`-th retry of vertex `v`:
/// exponential in the attempt count (capped at `2^6`), plus a
/// deterministic jitter in `[0, base/2)` keyed on the vertex and
/// attempt so concurrent losses fan back out instead of retrying in
/// lockstep.
fn retry_backoff(base: Duration, attempts: u32, v: VertexId) -> Duration {
    let exp = base * 2u32.pow(attempts.min(6));
    let range = (base.as_nanos() as u64 / 2).max(1);
    let jitter = gthinker_graph::hash::hash_u64(v.0 as u64 ^ ((attempts as u64) << 32)) % range;
    exp + Duration::from_nanos(jitter)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(capacity: usize) -> VertexCache {
        VertexCache::new(CacheConfig {
            num_buckets: 16,
            capacity,
            alpha: 0.2,
            counter_delta: 1, // exact counting in tests
            ..CacheConfig::default()
        })
    }

    fn adj(v: &[u32]) -> AdjList {
        AdjList::from_unsorted(v.iter().map(|&x| VertexId(x)).collect())
    }

    const T1: TaskId = TaskId(1);
    const T2: TaskId = TaskId(2);

    #[test]
    fn first_request_must_send_second_waits() {
        let c = small_cache(100);
        let mut h = c.counter_handle();
        assert!(matches!(c.request(VertexId(5), T1, &mut h), RequestOutcome::MustRequest));
        assert!(matches!(c.request(VertexId(5), T2, &mut h), RequestOutcome::AlreadyRequested));
        assert_eq!(c.approx_size(), 1, "one R-table entry counted once");
        let snap = c.stats().snapshot();
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.shared_waits, 1);
    }

    #[test]
    fn response_transfers_lock_count_and_waiters() {
        let c = small_cache(100);
        let mut h = c.counter_handle();
        c.request(VertexId(5), T1, &mut h);
        c.request(VertexId(5), T2, &mut h);
        let waiters = c.insert_response(VertexId(5), adj(&[1, 2]));
        assert_eq!(waiters, Some(vec![T1, T2]));
        assert_eq!(c.approx_size(), 1, "R entry became Γ entry");
        // Both tasks hold locks: not evictable yet.
        assert_eq!(c.exact_evictable(), 0);
        c.release(VertexId(5));
        assert_eq!(c.exact_evictable(), 0);
        c.release(VertexId(5));
        assert_eq!(c.exact_evictable(), 1);
    }

    #[test]
    fn hit_after_cached_increments_and_leaves_z() {
        let c = small_cache(100);
        let mut h = c.counter_handle();
        c.request(VertexId(7), T1, &mut h);
        c.insert_response(VertexId(7), adj(&[9]));
        c.release(VertexId(7)); // now zero-locked
        assert_eq!(c.exact_evictable(), 1);
        match c.request(VertexId(7), T2, &mut h) {
            RequestOutcome::Hit(a) => assert_eq!(a.as_slice(), &[VertexId(9)]),
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(c.exact_evictable(), 0, "hit removed vertex from Z-table");
        c.release(VertexId(7));
        assert_eq!(c.exact_evictable(), 1);
    }

    #[test]
    fn get_locked_does_not_change_counts() {
        let c = small_cache(100);
        let mut h = c.counter_handle();
        c.request(VertexId(3), T1, &mut h);
        c.insert_response(VertexId(3), adj(&[4]));
        assert!(c.get_locked(VertexId(3)).is_some());
        assert!(c.get_locked(VertexId(99)).is_none());
        c.release(VertexId(3));
        assert_eq!(c.exact_evictable(), 1);
    }

    #[test]
    fn duplicate_response_is_dropped() {
        let c = small_cache(100);
        let mut h = c.counter_handle();
        c.request(VertexId(5), T1, &mut h);
        assert_eq!(c.pulls_in_flight(), 1);
        assert_eq!(c.insert_response(VertexId(5), adj(&[])).map(|w| w.len()), Some(1));
        assert_eq!(c.pulls_in_flight(), 0);
        // The wire can duplicate or replay responses: OP2 is idempotent
        // and reports them as stale so the receiver does not touch its
        // outstanding-pull accounting.
        assert!(c.insert_response(VertexId(5), adj(&[])).is_none());
        assert!(c.insert_response(VertexId(5), adj(&[])).is_none());
        assert_eq!(c.exact_size(), 1);
        assert_eq!(c.pulls_in_flight(), 0);
        assert_eq!(c.stats().snapshot().stale_responses, 2);
    }

    #[test]
    fn timed_out_pulls_are_collected_with_backoff() {
        let c = VertexCache::new(CacheConfig {
            num_buckets: 16,
            capacity: 100,
            alpha: 0.2,
            counter_delta: 1,
            pull_timeout: Duration::from_millis(10),
        });
        let mut h = c.counter_handle();
        c.request(VertexId(5), T1, &mut h);
        c.request(VertexId(9), T2, &mut h);

        let now = Instant::now();
        assert!(c.collect_timed_out(now).is_empty(), "fresh requests have not timed out");

        // Jump past the first deadline: both pulls report lost.
        let later = now + Duration::from_millis(20);
        let mut lost = c.collect_timed_out(later);
        lost.sort_unstable();
        assert_eq!(lost, vec![VertexId(5), VertexId(9)]);
        assert_eq!(c.stats().snapshot().retries, 2);

        // Backoff doubled the deadline: one base timeout later they are
        // still pending, well before 2×base + jitter.
        assert!(c.collect_timed_out(later + Duration::from_millis(10)).is_empty());
        // Far enough out, they time out again.
        assert_eq!(c.collect_timed_out(later + Duration::from_millis(40)).len(), 2);

        // An answered pull stops retrying.
        c.insert_response(VertexId(5), adj(&[]));
        let all_later = later + Duration::from_secs(3600);
        assert_eq!(c.collect_timed_out(all_later), vec![VertexId(9)]);
    }

    #[test]
    fn collect_timed_out_is_free_when_idle() {
        let c = small_cache(100);
        assert_eq!(c.pulls_in_flight(), 0);
        assert!(c.collect_timed_out(Instant::now() + Duration::from_secs(60)).is_empty());
    }

    #[test]
    fn retry_backoff_grows_and_caps() {
        let base = Duration::from_millis(10);
        let v = VertexId(3);
        let mut prev = Duration::ZERO;
        for attempts in 1..=6 {
            let b = retry_backoff(base, attempts, v);
            assert!(b > prev, "backoff grows");
            assert!(b >= base * 2u32.pow(attempts), "at least exponential");
            prev = b;
        }
        // Capped: attempt 20 is no more than the 2^6 step plus jitter.
        assert!(retry_backoff(base, 20, v) <= base * 64 + base / 2);
        // Deterministic.
        assert_eq!(retry_backoff(base, 3, v), retry_backoff(base, 3, v));
    }

    #[test]
    #[should_panic(expected = "release of uncached vertex")]
    fn release_unknown_vertex_panics() {
        let c = small_cache(100);
        c.release(VertexId(1));
    }

    #[test]
    #[should_panic(expected = "release without matching request")]
    fn over_release_panics() {
        let c = small_cache(100);
        let mut h = c.counter_handle();
        c.request(VertexId(1), T1, &mut h);
        c.insert_response(VertexId(1), adj(&[]));
        c.release(VertexId(1));
        c.release(VertexId(1));
    }

    #[test]
    fn gc_noop_below_threshold() {
        let c = small_cache(10);
        let mut h = c.counter_handle();
        for i in 0..5 {
            c.request(VertexId(i), T1, &mut h);
            c.insert_response(VertexId(i), adj(&[]));
            c.release(VertexId(i));
        }
        assert_eq!(c.gc_pass(&mut h), 0, "5 ≤ 1.2·10, no eviction");
        assert_eq!(c.exact_size(), 5);
    }

    #[test]
    fn gc_evicts_down_to_capacity() {
        let c = small_cache(10);
        let mut h = c.counter_handle();
        // 20 unlocked cached vertices: 20 > 12 = (1+0.2)*10.
        for i in 0..20 {
            c.request(VertexId(i), T1, &mut h);
            c.insert_response(VertexId(i), adj(&[]));
            c.release(VertexId(i));
        }
        assert!(c.over_limit());
        let evicted = c.gc_pass(&mut h);
        assert_eq!(evicted, 10, "evicts s_cache - c_cache");
        assert_eq!(c.exact_size(), 10);
        assert!(!c.over_limit());
    }

    #[test]
    fn gc_skips_locked_vertices() {
        let c = small_cache(4);
        let mut h = c.counter_handle();
        for i in 0..10 {
            c.request(VertexId(i), T1, &mut h);
            c.insert_response(VertexId(i), adj(&[]));
            if i % 2 == 0 {
                c.release(VertexId(i)); // 5 evictable, 5 locked
            }
        }
        assert!(c.over_limit());
        let evicted = c.gc_pass(&mut h);
        assert_eq!(evicted, 5, "only the released vertices can go");
        assert_eq!(c.exact_size(), 5);
        // Locked vertices all survived.
        for i in (1..10).step_by(2) {
            assert!(c.get_locked(VertexId(i)).is_some());
        }
    }

    #[test]
    fn requests_count_toward_size_and_limit() {
        let c = small_cache(4);
        let mut h = c.counter_handle();
        for i in 0..6 {
            c.request(VertexId(i), TaskId(i as u64), &mut h);
        }
        assert_eq!(c.approx_size(), 6);
        assert!(c.over_limit(), "in-flight requests count toward s_cache");
        // GC cannot evict R-table entries.
        assert_eq!(c.gc_pass(&mut h), 0);
    }

    #[test]
    fn concurrent_request_release_is_linearizable_per_vertex() {
        let c = Arc::new(small_cache(1_000_000));
        // Seed 64 vertices as cached and unlocked.
        {
            let mut h = c.counter_handle();
            for i in 0..64 {
                c.request(VertexId(i), T1, &mut h);
                c.insert_response(VertexId(i), adj(&[i + 1]));
                c.release(VertexId(i));
            }
        }
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    let mut h = c.counter_handle();
                    for round in 0..2_000u32 {
                        let v = VertexId((t * 8 + round) % 64);
                        match c.request(v, TaskId(t as u64), &mut h) {
                            RequestOutcome::Hit(_) => c.release(v),
                            _ => unreachable!("seeded vertices are always cached"),
                        }
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        // All locks released: every vertex evictable again.
        assert_eq!(c.exact_evictable(), 64);
        assert_eq!(c.exact_size(), 64);
    }
}
