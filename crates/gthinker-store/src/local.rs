//! The local vertex table `T_local`.
//!
//! Each worker loads its hash partition of the input graph into
//! `T_local`; together the tables of all workers form the distributed
//! key-value store that tasks pull `Γ(v)` from. `T_local` also owns the
//! shared **"next" spawn pointer** (Fig. 7): compers lock and forward it
//! to claim batches of not-yet-spawned vertices when they need to
//! generate fresh tasks.

use gthinker_graph::adj::{AdjList, SharedAdj};
use gthinker_graph::hash::{fast_map_with_capacity, FastMap};
use gthinker_graph::ids::{Label, VertexId};
use parking_lot::Mutex;
use std::sync::Arc;

/// A worker's partition of `(v, Γ(v))` records.
pub struct LocalTable {
    map: FastMap<VertexId, SharedAdj>,
    labels: FastMap<VertexId, Label>,
    /// Vertex IDs in load order; the spawn pointer indexes into this.
    order: Vec<VertexId>,
    /// Index of the next vertex to spawn a task from.
    next: Mutex<usize>,
}

impl LocalTable {
    /// Builds a table from `(v, Γ(v))` records (for unlabeled graphs).
    pub fn new(records: Vec<(VertexId, AdjList)>) -> Self {
        Self::with_labels(records, Vec::new())
    }

    /// Builds a table from records plus `(v, label)` pairs for labeled
    /// graphs.
    pub fn with_labels(records: Vec<(VertexId, AdjList)>, labels: Vec<(VertexId, Label)>) -> Self {
        let mut map = fast_map_with_capacity(records.len());
        let mut order = Vec::with_capacity(records.len());
        for (v, adj) in records {
            let prev = map.insert(v, Arc::new(adj));
            assert!(prev.is_none(), "duplicate local vertex {v}");
            order.push(v);
        }
        let mut label_map = fast_map_with_capacity(labels.len());
        for (v, l) in labels {
            label_map.insert(v, l);
        }
        LocalTable { map, labels: label_map, order, next: Mutex::new(0) }
    }

    /// Number of local vertices.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `Γ(v)` if `v` is local; the returned `Arc` is shared,
    /// never copied.
    #[inline]
    pub fn get(&self, v: VertexId) -> Option<SharedAdj> {
        self.map.get(&v).cloned()
    }

    /// True if `v` lives in this partition.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.map.contains_key(&v)
    }

    /// The label of local vertex `v`, if labeled.
    pub fn label(&self, v: VertexId) -> Option<Label> {
        self.labels.get(&v).copied()
    }

    /// Vertices in load order (spawn order).
    pub fn vertices(&self) -> &[VertexId] {
        &self.order
    }

    /// Atomically claims up to `count` not-yet-spawned vertices by
    /// forwarding the "next" pointer; returns the claimed slice.
    ///
    /// Called by a comper when both its spilled-file list and `B_task`
    /// are empty and its queue needs refilling (§V-B refill priority).
    pub fn claim_spawn_batch(&self, count: usize) -> &[VertexId] {
        let mut next = self.next.lock();
        let start = *next;
        let end = (start + count).min(self.order.len());
        *next = end;
        &self.order[start..end]
    }

    /// Number of vertices that have not yet been claimed for spawning —
    /// used by the master to estimate a worker's remaining load for
    /// work-stealing plans.
    pub fn unspawned(&self) -> usize {
        self.order.len() - *self.next.lock()
    }

    /// Resets the spawn pointer (used when restoring from a checkpoint).
    pub fn reset_spawn_pointer(&self, position: usize) {
        let mut next = self.next.lock();
        *next = position.min(self.order.len());
    }

    /// Current spawn-pointer position (for checkpointing).
    pub fn spawn_position(&self) -> usize {
        *self.next.lock()
    }

    /// Approximate heap bytes (memory accounting).
    pub fn heap_bytes(&self) -> usize {
        let lists: usize = self.map.values().map(|a| a.heap_bytes()).sum();
        lists + self.order.capacity() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(n: u32) -> LocalTable {
        let records = (0..n)
            .map(|i| (VertexId(i), AdjList::from_unsorted(vec![VertexId((i + 1) % n)])))
            .collect();
        LocalTable::new(records)
    }

    #[test]
    fn lookup_and_membership() {
        let t = table(5);
        assert_eq!(t.len(), 5);
        assert!(t.contains(VertexId(3)));
        assert!(!t.contains(VertexId(9)));
        assert_eq!(t.get(VertexId(2)).unwrap().as_slice(), &[VertexId(3)]);
        assert!(t.get(VertexId(9)).is_none());
    }

    #[test]
    fn spawn_batches_are_disjoint_and_exhaustive() {
        let t = table(10);
        let a: Vec<_> = t.claim_spawn_batch(4).to_vec();
        let b: Vec<_> = t.claim_spawn_batch(4).to_vec();
        let c: Vec<_> = t.claim_spawn_batch(4).to_vec();
        let d: Vec<_> = t.claim_spawn_batch(4).to_vec();
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 4);
        assert_eq!(c.len(), 2, "only 2 left");
        assert!(d.is_empty());
        let mut all: Vec<_> = a.into_iter().chain(b).chain(c).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).map(VertexId).collect::<Vec<_>>());
    }

    #[test]
    fn unspawned_tracks_progress() {
        let t = table(6);
        assert_eq!(t.unspawned(), 6);
        t.claim_spawn_batch(4);
        assert_eq!(t.unspawned(), 2);
        t.claim_spawn_batch(4);
        assert_eq!(t.unspawned(), 0);
    }

    #[test]
    fn spawn_pointer_checkpoint_round_trip() {
        let t = table(8);
        t.claim_spawn_batch(5);
        let pos = t.spawn_position();
        assert_eq!(pos, 5);
        t.reset_spawn_pointer(2);
        assert_eq!(t.unspawned(), 6);
        t.reset_spawn_pointer(100);
        assert_eq!(t.unspawned(), 0);
    }

    #[test]
    fn labels_attach_to_vertices() {
        let records = vec![(VertexId(1), AdjList::new()), (VertexId(2), AdjList::new())];
        let t = LocalTable::with_labels(records, vec![(VertexId(1), Label(7))]);
        assert_eq!(t.label(VertexId(1)), Some(Label(7)));
        assert_eq!(t.label(VertexId(2)), None);
    }

    #[test]
    #[should_panic(expected = "duplicate local vertex")]
    fn duplicate_vertices_rejected() {
        let _ = LocalTable::new(vec![(VertexId(1), AdjList::new()), (VertexId(1), AdjList::new())]);
    }

    #[test]
    fn concurrent_claims_never_overlap() {
        let t = Arc::new(table(1000));
        let claimed: Vec<_> = (0..8)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let batch = t.claim_spawn_batch(7).to_vec();
                        if batch.is_empty() {
                            break;
                        }
                        mine.extend(batch);
                    }
                    mine
                })
            })
            .collect();
        let mut all: Vec<VertexId> = Vec::new();
        for h in claimed {
            all.extend(h.join().unwrap());
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1000, "every vertex claimed exactly once");
    }
}
