//! The local vertex table `T_local`.
//!
//! Each worker loads its hash partition of the input graph into
//! `T_local`; together the tables of all workers form the distributed
//! key-value store that tasks pull `Γ(v)` from. `T_local` also owns the
//! shared **"next" spawn pointer** (Fig. 7): compers lock and forward it
//! to claim batches of not-yet-spawned vertices when they need to
//! generate fresh tasks.
//!
//! Two backings exist behind the same lookup API:
//!
//! * **Eager** — every owned `(v, Γ(v))` record materialized up front,
//!   the classic path for in-RAM graphs (lists are trimmed before
//!   partitioning).
//! * **Lazy** — a shared [`AdjacencyStore`] (typically a memory-mapped
//!   compressed graph) plus a membership bitset; `Γ(v)` is decoded on
//!   each lookup and the job's trimmer, if any, is applied at decode
//!   time. The worker's own resident footprint is then just the bitset
//!   and spawn order, not the partition's adjacency bytes — those stay
//!   in the page cache.

use gthinker_graph::adj::{AdjList, SharedAdj};
use gthinker_graph::hash::{fast_map_with_capacity, FastMap};
use gthinker_graph::ids::{Label, VertexId};
use gthinker_graph::store::AdjacencyStore;
use gthinker_graph::trim::Trimmer;
use parking_lot::Mutex;
use std::sync::Arc;

/// A fixed-size bitset over vertex IDs `0..n`.
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn with_capacity(n: usize) -> Self {
        BitSet { words: vec![0; n.div_ceil(64)] }
    }

    fn set(&mut self, i: u32) {
        self.words[i as usize / 64] |= 1 << (i % 64);
    }

    fn contains(&self, i: u32) -> bool {
        self.words.get(i as usize / 64).is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

enum Backing {
    Eager { map: FastMap<VertexId, SharedAdj>, labels: FastMap<VertexId, Label> },
    Lazy { store: Arc<dyn AdjacencyStore>, trimmer: Option<Arc<dyn Trimmer>>, members: BitSet },
}

/// A worker's partition of `(v, Γ(v))` records.
pub struct LocalTable {
    backing: Backing,
    /// Vertex IDs in load order; the spawn pointer indexes into this.
    order: Vec<VertexId>,
    /// Index of the next vertex to spawn a task from.
    next: Mutex<usize>,
}

impl LocalTable {
    /// Builds a table from `(v, Γ(v))` records (for unlabeled graphs).
    pub fn new(records: Vec<(VertexId, AdjList)>) -> Self {
        Self::with_labels(records, Vec::new())
    }

    /// Builds a table from records plus `(v, label)` pairs for labeled
    /// graphs.
    pub fn with_labels(records: Vec<(VertexId, AdjList)>, labels: Vec<(VertexId, Label)>) -> Self {
        let mut map = fast_map_with_capacity(records.len());
        let mut order = Vec::with_capacity(records.len());
        for (v, adj) in records {
            let prev = map.insert(v, Arc::new(adj));
            assert!(prev.is_none(), "duplicate local vertex {v}");
            order.push(v);
        }
        let mut label_map = fast_map_with_capacity(labels.len());
        for (v, l) in labels {
            label_map.insert(v, l);
        }
        LocalTable {
            backing: Backing::Eager { map, labels: label_map },
            order,
            next: Mutex::new(0),
        }
    }

    /// Builds a lazily-decoding table over a shared store: `members`
    /// lists this worker's owned vertices in spawn order, and every
    /// [`LocalTable::get`] decodes `Γ(v)` from `store`, applying
    /// `trimmer` (the job's post-load trim, §IV item 7) on the decoded
    /// list. Equivalent to the eager path because trimming is
    /// per-vertex and ownership depends only on the vertex ID.
    pub fn lazy(
        store: Arc<dyn AdjacencyStore>,
        trimmer: Option<Arc<dyn Trimmer>>,
        members: Vec<VertexId>,
    ) -> Self {
        let mut bits = BitSet::with_capacity(store.num_vertices());
        for &v in &members {
            assert!((v.0 as usize) < store.num_vertices(), "member {v} outside the store");
            assert!(!bits.contains(v.0), "duplicate local vertex {v}");
            bits.set(v.0);
        }
        LocalTable {
            backing: Backing::Lazy { store, trimmer, members: bits },
            order: members,
            next: Mutex::new(0),
        }
    }

    /// Number of local vertices.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Looks up `Γ(v)` if `v` is local. Eager backing shares the one
    /// `Arc` per vertex; lazy backing decodes a fresh list per call —
    /// callers that need decode-once semantics hold on to the returned
    /// `Arc` (pinned frontiers and the remote-side `VertexCache`
    /// already do).
    #[inline]
    pub fn get(&self, v: VertexId) -> Option<SharedAdj> {
        match &self.backing {
            Backing::Eager { map, .. } => map.get(&v).cloned(),
            Backing::Lazy { store, trimmer, members } => {
                if !members.contains(v.0) {
                    return None;
                }
                let mut adj = store.adjacency(v);
                if let Some(t) = trimmer {
                    t.trim(v, store.label(v), &mut adj);
                }
                Some(Arc::new(adj))
            }
        }
    }

    /// True if `v` lives in this partition.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        match &self.backing {
            Backing::Eager { map, .. } => map.contains_key(&v),
            Backing::Lazy { members, .. } => members.contains(v.0),
        }
    }

    /// The label of local vertex `v`, if labeled.
    pub fn label(&self, v: VertexId) -> Option<Label> {
        match &self.backing {
            Backing::Eager { labels, .. } => labels.get(&v).copied(),
            Backing::Lazy { store, members, .. } => {
                if members.contains(v.0) {
                    store.label(v)
                } else {
                    None
                }
            }
        }
    }

    /// Vertices in load order (spawn order).
    pub fn vertices(&self) -> &[VertexId] {
        &self.order
    }

    /// Atomically claims up to `count` not-yet-spawned vertices by
    /// forwarding the "next" pointer; returns the claimed slice.
    ///
    /// Called by a comper when both its spilled-file list and `B_task`
    /// are empty and its queue needs refilling (§V-B refill priority).
    pub fn claim_spawn_batch(&self, count: usize) -> &[VertexId] {
        let mut next = self.next.lock();
        let start = *next;
        let end = (start + count).min(self.order.len());
        *next = end;
        &self.order[start..end]
    }

    /// Number of vertices that have not yet been claimed for spawning —
    /// used by the master to estimate a worker's remaining load for
    /// work-stealing plans.
    pub fn unspawned(&self) -> usize {
        self.order.len() - *self.next.lock()
    }

    /// Resets the spawn pointer (used when restoring from a checkpoint).
    pub fn reset_spawn_pointer(&self, position: usize) {
        let mut next = self.next.lock();
        *next = position.min(self.order.len());
    }

    /// Current spawn-pointer position (for checkpointing).
    pub fn spawn_position(&self) -> usize {
        *self.next.lock()
    }

    /// Approximate heap bytes (memory accounting). Lazy backing counts
    /// its bitset and the store's own resident footprint — near zero
    /// for a memory-mapped store, which is the point of mapping it.
    pub fn heap_bytes(&self) -> usize {
        let backing = match &self.backing {
            Backing::Eager { map, .. } => map.values().map(|a| a.heap_bytes()).sum(),
            Backing::Lazy { store, members, .. } => members.heap_bytes() + store.heap_bytes(),
        };
        backing + self.order.capacity() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gthinker_graph::gen;
    use gthinker_graph::graph::Graph;
    use gthinker_graph::trim::GreaterIdTrimmer;

    fn table(n: u32) -> LocalTable {
        let records = (0..n)
            .map(|i| (VertexId(i), AdjList::from_unsorted(vec![VertexId((i + 1) % n)])))
            .collect();
        LocalTable::new(records)
    }

    #[test]
    fn lookup_and_membership() {
        let t = table(5);
        assert_eq!(t.len(), 5);
        assert!(t.contains(VertexId(3)));
        assert!(!t.contains(VertexId(9)));
        assert_eq!(t.get(VertexId(2)).unwrap().as_slice(), &[VertexId(3)]);
        assert!(t.get(VertexId(9)).is_none());
    }

    #[test]
    fn spawn_batches_are_disjoint_and_exhaustive() {
        let t = table(10);
        let a: Vec<_> = t.claim_spawn_batch(4).to_vec();
        let b: Vec<_> = t.claim_spawn_batch(4).to_vec();
        let c: Vec<_> = t.claim_spawn_batch(4).to_vec();
        let d: Vec<_> = t.claim_spawn_batch(4).to_vec();
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 4);
        assert_eq!(c.len(), 2, "only 2 left");
        assert!(d.is_empty());
        let mut all: Vec<_> = a.into_iter().chain(b).chain(c).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).map(VertexId).collect::<Vec<_>>());
    }

    #[test]
    fn unspawned_tracks_progress() {
        let t = table(6);
        assert_eq!(t.unspawned(), 6);
        t.claim_spawn_batch(4);
        assert_eq!(t.unspawned(), 2);
        t.claim_spawn_batch(4);
        assert_eq!(t.unspawned(), 0);
    }

    #[test]
    fn spawn_pointer_checkpoint_round_trip() {
        let t = table(8);
        t.claim_spawn_batch(5);
        let pos = t.spawn_position();
        assert_eq!(pos, 5);
        t.reset_spawn_pointer(2);
        assert_eq!(t.unspawned(), 6);
        t.reset_spawn_pointer(100);
        assert_eq!(t.unspawned(), 0);
    }

    #[test]
    fn labels_attach_to_vertices() {
        let records = vec![(VertexId(1), AdjList::new()), (VertexId(2), AdjList::new())];
        let t = LocalTable::with_labels(records, vec![(VertexId(1), Label(7))]);
        assert_eq!(t.label(VertexId(1)), Some(Label(7)));
        assert_eq!(t.label(VertexId(2)), None);
    }

    #[test]
    #[should_panic(expected = "duplicate local vertex")]
    fn duplicate_vertices_rejected() {
        let _ = LocalTable::new(vec![(VertexId(1), AdjList::new()), (VertexId(1), AdjList::new())]);
    }

    #[test]
    fn lazy_table_matches_eager_on_the_same_partition() {
        let g = gen::random_labels(gen::gnp(120, 0.06, 42), 3, 7);
        let members: Vec<VertexId> = g.vertices().filter(|v| v.0 % 3 == 1).collect();
        let eager = LocalTable::with_labels(
            members.iter().map(|&v| (v, g.neighbors(v).clone())).collect(),
            members.iter().map(|&v| (v, g.label(v).unwrap())).collect(),
        );
        let store: Arc<dyn AdjacencyStore> = Arc::new(g.clone());
        let lazy = LocalTable::lazy(store, None, members.clone());
        assert_eq!(eager.len(), lazy.len());
        assert_eq!(eager.vertices(), lazy.vertices());
        for v in g.vertices() {
            assert_eq!(eager.contains(v), lazy.contains(v));
            assert_eq!(eager.label(v), lazy.label(v));
            match (eager.get(v), lazy.get(v)) {
                (Some(a), Some(b)) => assert_eq!(*a, *b, "Γ({v})"),
                (None, None) => {}
                _ => panic!("backing disagreement at {v}"),
            }
        }
    }

    #[test]
    fn lazy_table_applies_trimmer_at_decode() {
        let g = gen::gnp(80, 0.1, 5);
        let members: Vec<VertexId> = g.vertices().collect();
        let store: Arc<dyn AdjacencyStore> = Arc::new(g.clone());
        let lazy = LocalTable::lazy(store, Some(Arc::new(GreaterIdTrimmer)), members);
        for v in g.vertices() {
            let got = lazy.get(v).unwrap();
            assert_eq!(got.as_slice(), g.neighbors(v).greater_than(v), "Γ_>({v})");
        }
    }

    #[test]
    fn lazy_table_decodes_fresh_lists_per_call() {
        let g = Graph::from_edges(4, &[(VertexId(0), VertexId(1)), (VertexId(0), VertexId(2))]);
        let store: Arc<dyn AdjacencyStore> = Arc::new(g);
        let lazy = LocalTable::lazy(store, None, vec![VertexId(0), VertexId(3)]);
        let a = lazy.get(VertexId(0)).unwrap();
        let b = lazy.get(VertexId(0)).unwrap();
        assert_eq!(*a, *b);
        assert!(!Arc::ptr_eq(&a, &b), "lazy lookups decode per call");
        assert!(lazy.get(VertexId(1)).is_none(), "unowned vertex is not local");
        assert_eq!(lazy.get(VertexId(3)).unwrap().degree(), 0, "isolated member decodes empty");
    }

    #[test]
    #[should_panic(expected = "duplicate local vertex")]
    fn lazy_duplicate_members_rejected() {
        let g = Graph::with_vertices(4);
        let store: Arc<dyn AdjacencyStore> = Arc::new(g);
        let _ = LocalTable::lazy(store, None, vec![VertexId(1), VertexId(1)]);
    }

    #[test]
    fn concurrent_claims_never_overlap() {
        let t = Arc::new(table(1000));
        let claimed: Vec<_> = (0..8)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let batch = t.claim_spawn_batch(7).to_vec();
                        if batch.is_empty() {
                            break;
                        }
                        mine.extend(batch);
                    }
                    mine
                })
            })
            .collect();
        let mut all: Vec<VertexId> = Vec::new();
        for h in claimed {
            all.extend(h.join().unwrap());
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 1000, "every vertex claimed exactly once");
    }
}
