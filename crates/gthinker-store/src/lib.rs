//! Vertex storage for G-thinker: the local vertex table `T_local` and
//! the highly-concurrent remote-vertex cache `T_cache` of §V-A.
//!
//! The cache is the first of the paper's two pillars of CPU-bound
//! execution: it lets many comper threads concurrently request, use,
//! release and evict remote vertices with per-bucket locking only.
//!
//! * [`LocalTable`] — the worker's partition of `(v, Γ(v))` records,
//!   plus the shared "next" spawn pointer.
//! * [`VertexCache`] — `k` mutex-protected buckets, each with a Γ-table
//!   (cached vertices + lock counts), a Z-table (evictable vertices) and
//!   an R-table (in-flight requests + waiting tasks); operations OP1–OP4.
//! * [`ApproxCounter`] — the approximate `s_cache` size counter with
//!   per-thread delta commits (threshold δ).

pub mod cache;
pub mod counter;
pub mod local;

pub use cache::{CacheConfig, CacheSnapshot, CacheStats, RequestOutcome, VertexCache};
pub use counter::{ApproxCounter, CounterHandle};
pub use local::LocalTable;
