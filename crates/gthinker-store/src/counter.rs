//! The approximate cache-size counter `s_cache` (§V-A, "Keeping
//! `s_cache` bounded").
//!
//! `s_cache` is updated by every comper (inserts) and by GC (evictions).
//! A single atomic would still be a contention point at high comper
//! counts, so the paper maintains it *approximately*: each thread
//! accumulates a local delta and commits it to the shared counter only
//! when the delta's magnitude reaches a threshold δ (default 10). The
//! estimation error is bounded by `n_threads × δ`, negligible against a
//! capacity of millions.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// The shared, approximately-maintained counter.
#[derive(Debug, Default)]
pub struct ApproxCounter {
    value: AtomicI64,
}

impl ApproxCounter {
    /// Creates a counter at zero.
    pub fn new() -> Arc<Self> {
        Arc::new(ApproxCounter { value: AtomicI64::new(0) })
    }

    /// Reads the committed value. May lag the true value by at most
    /// `n_handles × δ`.
    #[inline]
    pub fn read(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Commits a delta directly (used by handle flushes).
    #[inline]
    fn commit(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Creates a per-thread handle with commit threshold `delta`.
    pub fn handle(self: &Arc<Self>, delta: u32) -> CounterHandle {
        assert!(delta >= 1, "commit threshold must be at least 1");
        CounterHandle { counter: Arc::clone(self), local: 0, threshold: delta as i64 }
    }
}

/// A per-thread accumulator that batches updates to an [`ApproxCounter`].
///
/// Flushes automatically when the local magnitude reaches the threshold
/// δ, and on drop, so no update is ever lost.
#[derive(Debug)]
pub struct CounterHandle {
    counter: Arc<ApproxCounter>,
    local: i64,
    threshold: i64,
}

impl CounterHandle {
    /// Adds `n` locally, committing when the threshold is reached.
    #[inline]
    pub fn add(&mut self, n: i64) {
        self.local += n;
        if self.local.abs() >= self.threshold {
            self.counter.commit(self.local);
            self.local = 0;
        }
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Decrements by one.
    #[inline]
    pub fn decr(&mut self) {
        self.add(-1);
    }

    /// Forces the local delta into the shared counter immediately.
    pub fn flush(&mut self) {
        if self.local != 0 {
            self.counter.commit(self.local);
            self.local = 0;
        }
    }

    /// The shared counter this handle commits to.
    pub fn counter(&self) -> &Arc<ApproxCounter> {
        &self.counter
    }
}

impl Drop for CounterHandle {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commits_only_at_threshold() {
        let c = ApproxCounter::new();
        let mut h = c.handle(10);
        for _ in 0..9 {
            h.incr();
        }
        assert_eq!(c.read(), 0, "below threshold, nothing committed");
        h.incr();
        assert_eq!(c.read(), 10);
    }

    #[test]
    fn negative_deltas_commit_symmetrically() {
        let c = ApproxCounter::new();
        let mut h = c.handle(5);
        for _ in 0..5 {
            h.decr();
        }
        assert_eq!(c.read(), -5);
    }

    #[test]
    fn mixed_updates_cancel_locally() {
        let c = ApproxCounter::new();
        let mut h = c.handle(10);
        for _ in 0..6 {
            h.incr();
        }
        for _ in 0..6 {
            h.decr();
        }
        assert_eq!(c.read(), 0);
        h.flush();
        assert_eq!(c.read(), 0);
    }

    #[test]
    fn drop_flushes_residue() {
        let c = ApproxCounter::new();
        {
            let mut h = c.handle(100);
            h.add(7);
        }
        assert_eq!(c.read(), 7);
    }

    #[test]
    fn threshold_one_behaves_exactly() {
        let c = ApproxCounter::new();
        let mut h = c.handle(1);
        h.incr();
        assert_eq!(c.read(), 1);
        h.decr();
        assert_eq!(c.read(), 0);
    }

    #[test]
    fn concurrent_handles_converge() {
        let c = ApproxCounter::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    let mut h = c.handle(10);
                    for _ in 0..10_000 {
                        h.incr();
                    }
                    for _ in 0..4_000 {
                        h.decr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.read(), 8 * 6_000);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threshold_rejected() {
        let c = ApproxCounter::new();
        let _ = c.handle(0);
    }
}
