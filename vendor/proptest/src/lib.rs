//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the strategy combinators its property tests use: `any`,
//! ranges, tuples, `Just`, `prop_map`, `prop_oneof!`,
//! `collection::vec` and the `proptest!` test macro. Cases are
//! generated from a fixed-seed xoshiro stream (deterministic runs);
//! there is **no shrinking** — a failing case panics with the
//! generated inputs' `Debug` rendering via the ordinary `assert!`
//! machinery in `prop_assert!`/`prop_assert_eq!`.

use std::marker::PhantomData;

/// Deterministic per-test RNG (xoshiro256++ seeded by SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of random values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(move |rng: &mut TestRng| self.generate(rng))
    }
}

/// Type-erased strategy (what `prop_oneof!` arms collapse into).
pub type BoxedStrategy<T> = Box<dyn Fn(&mut TestRng) -> T>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a full-domain default strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// The default strategy for `T` (full domain).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_strategy_range {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $ty
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $ty
            }
        }
        impl Strategy for std::ops::RangeFrom<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let span = (<$ty>::MAX as u128) - (self.start as u128) + 1;
                self.start + (rng.next_u64() as u128 % span) as $ty
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A.0);
impl_strategy_tuple!(A.0, B.1);
impl_strategy_tuple!(A.0, B.1, C.2);
impl_strategy_tuple!(A.0, B.1, C.2, D.3);
impl_strategy_tuple!(A.0, B.1, C.2, D.3, E.4);
impl_strategy_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Number of random cases each `proptest!` test runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Picks one of several same-valued strategies uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: Vec<$crate::BoxedStrategy<_>> = vec![
            $($crate::Strategy::boxed($arm)),+
        ];
        $crate::OneOf { arms }
    }};
}

pub struct OneOf<T> {
    pub arms: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Assertion macros: identical to `assert!`/`assert_eq!` here — the
/// runner has no shrinking phase to report back to, so panicking with
/// the message is the whole failure path.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the rest of the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// The test-defining macro. Each `fn name(arg in strategy, ...)` body
/// becomes a `#[test]` running `cases` seeded random instantiations.
/// The seed mixes the test name so distinct tests get distinct streams.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = {
                    // Stable per-test stream: hash the test's name.
                    let name = stringify!($name);
                    let mut h = 0xcbf29ce484222325u64;
                    for b in name.bytes() {
                        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
                    }
                    $crate::TestRng::seed_from_u64(h)
                };
                for __case in 0..cfg.cases {
                    let case_runner = |__rng: &mut $crate::TestRng| {
                        $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                        $body
                    };
                    case_runner(&mut __rng);
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..10, f in 0.25f64..0.75, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            let _ = b;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn combinators_compose(
            v in collection::vec((0u8..4, any::<u16>()).prop_map(|(a, b)| a as u32 + b as u32), 1..5),
            pick in prop_oneof![Just(1u8), 2u8..4, Just(9u8)],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(pick == 1 || (2..4).contains(&pick) || pick == 9);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::seed_from_u64(3);
        let mut b = crate::TestRng::seed_from_u64(3);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
