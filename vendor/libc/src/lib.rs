//! Offline stand-in for the `libc` crate (Linux-only).
//!
//! The build environment has no crates.io access, so the workspace
//! vendors exactly the symbol surface it needs: `clock_gettime` with
//! the per-thread and per-process CPU clocks (metrics layer), and the
//! `mmap`/`munmap`/`madvise` trio the compressed graph storage uses to
//! map read-only graph files. Constants match `<time.h>` /
//! `<sys/mman.h>` on Linux.

#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type c_long = i64;
pub type c_void = std::ffi::c_void;
pub type time_t = i64;
pub type clockid_t = c_int;
pub type size_t = usize;
pub type off_t = i64;

/// `struct timespec` from `<time.h>`.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

/// CPU time consumed by the whole process.
pub const CLOCK_PROCESS_CPUTIME_ID: clockid_t = 2;
/// CPU time consumed by the calling thread.
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;

/// Pages may be read.
pub const PROT_READ: c_int = 1;
/// Share the mapping with other processes mapping the same file.
pub const MAP_SHARED: c_int = 0x01;
/// `mmap` failure sentinel.
pub const MAP_FAILED: *mut c_void = !0usize as *mut c_void;
/// Expect sequential access (readahead aggressively).
pub const MADV_SEQUENTIAL: c_int = 2;
/// Expect random access (disable readahead).
pub const MADV_RANDOM: c_int = 1;

extern "C" {
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    pub fn madvise(addr: *mut c_void, len: size_t, advice: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_clock_ticks() {
        let mut a = timespec::default();
        assert_eq!(unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut a) }, 0);
        // Burn a little CPU so the clock must advance.
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x);
        let mut b = timespec::default();
        assert_eq!(unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut b) }, 0);
        assert!((b.tv_sec, b.tv_nsec) > (a.tv_sec, a.tv_nsec));
    }

    #[test]
    fn mmap_round_trip_reads_file_contents() {
        use std::io::Write;
        use std::os::unix::io::AsRawFd;
        let path = std::env::temp_dir().join(format!("libc-stub-mmap-{}", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(b"hello mmap").unwrap();
        f.sync_all().unwrap();
        drop(f);
        let f = std::fs::File::open(&path).unwrap();
        let ptr = unsafe {
            mmap(std::ptr::null_mut(), 10, PROT_READ, MAP_SHARED, f.as_raw_fd(), 0)
        };
        assert_ne!(ptr, MAP_FAILED);
        let bytes = unsafe { std::slice::from_raw_parts(ptr as *const u8, 10) };
        assert_eq!(bytes, b"hello mmap");
        assert_eq!(unsafe { munmap(ptr, 10) }, 0);
        let _ = std::fs::remove_file(&path);
    }
}
