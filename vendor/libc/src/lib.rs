//! Offline stand-in for the `libc` crate (Linux-only).
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the two-symbol surface it needs: `clock_gettime` with the
//! per-thread and per-process CPU clocks, used by the metrics layer to
//! separate on-CPU compute time from wall-clock waits. Constants match
//! `<time.h>` on Linux.

#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type c_long = i64;
pub type time_t = i64;
pub type clockid_t = c_int;

/// `struct timespec` from `<time.h>`.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

/// CPU time consumed by the whole process.
pub const CLOCK_PROCESS_CPUTIME_ID: clockid_t = 2;
/// CPU time consumed by the calling thread.
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;

extern "C" {
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_clock_ticks() {
        let mut a = timespec::default();
        assert_eq!(unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut a) }, 0);
        // Burn a little CPU so the clock must advance.
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x);
        let mut b = timespec::default();
        assert_eq!(unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut b) }, 0);
        assert!((b.tv_sec, b.tv_nsec) > (a.tv_sec, a.tv_nsec));
    }
}
