//! Offline stand-in for the `libc` crate (Linux-only).
//!
//! The build environment has no crates.io access, so the workspace
//! vendors exactly the symbol surface it needs: `clock_gettime` with
//! the per-thread and per-process CPU clocks (metrics layer), the
//! `mmap`/`munmap`/`madvise` trio the compressed graph storage uses to
//! map read-only graph files, and `poll(2)` for the evented TCP data
//! plane's single I/O loop. Constants match `<time.h>` /
//! `<sys/mman.h>` / `<poll.h>` on Linux.

#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type c_short = i16;
pub type c_long = i64;
pub type c_void = std::ffi::c_void;
pub type time_t = i64;
pub type clockid_t = c_int;
pub type size_t = usize;
pub type off_t = i64;

/// `struct timespec` from `<time.h>`.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

/// CPU time consumed by the whole process.
pub const CLOCK_PROCESS_CPUTIME_ID: clockid_t = 2;
/// CPU time consumed by the calling thread.
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;

/// Pages may be read.
pub const PROT_READ: c_int = 1;
/// Share the mapping with other processes mapping the same file.
pub const MAP_SHARED: c_int = 0x01;
/// `mmap` failure sentinel.
pub const MAP_FAILED: *mut c_void = !0usize as *mut c_void;
/// Expect sequential access (readahead aggressively).
pub const MADV_SEQUENTIAL: c_int = 2;
/// Expect random access (disable readahead).
pub const MADV_RANDOM: c_int = 1;

/// Number of `pollfd` entries, `unsigned long` on Linux.
pub type nfds_t = u64;

/// One descriptor's interest set for `poll(2)` (`struct pollfd`).
#[repr(C)]
#[derive(Clone, Copy, Debug, Default)]
pub struct pollfd {
    pub fd: c_int,
    pub events: c_short,
    pub revents: c_short,
}

/// Data may be read without blocking.
pub const POLLIN: c_short = 0x001;
/// Writing is possible without blocking.
pub const POLLOUT: c_short = 0x004;
/// Error condition (revents only).
pub const POLLERR: c_short = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: c_short = 0x010;
/// Invalid descriptor (revents only).
pub const POLLNVAL: c_short = 0x020;

extern "C" {
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
    pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    pub fn madvise(addr: *mut c_void, len: size_t, advice: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_clock_ticks() {
        let mut a = timespec::default();
        assert_eq!(unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut a) }, 0);
        // Burn a little CPU so the clock must advance.
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x);
        let mut b = timespec::default();
        assert_eq!(unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut b) }, 0);
        assert!((b.tv_sec, b.tv_nsec) > (a.tv_sec, a.tv_nsec));
    }

    #[test]
    fn mmap_round_trip_reads_file_contents() {
        use std::io::Write;
        use std::os::unix::io::AsRawFd;
        let path = std::env::temp_dir().join(format!("libc-stub-mmap-{}", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(b"hello mmap").unwrap();
        f.sync_all().unwrap();
        drop(f);
        let f = std::fs::File::open(&path).unwrap();
        let ptr = unsafe {
            mmap(std::ptr::null_mut(), 10, PROT_READ, MAP_SHARED, f.as_raw_fd(), 0)
        };
        assert_ne!(ptr, MAP_FAILED);
        let bytes = unsafe { std::slice::from_raw_parts(ptr as *const u8, 10) };
        assert_eq!(bytes, b"hello mmap");
        assert_eq!(unsafe { munmap(ptr, 10) }, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn poll_reports_readable_after_write() {
        use std::io::Write;
        use std::os::unix::io::AsRawFd;
        use std::os::unix::net::UnixStream;
        let (mut a, b) = UnixStream::pair().unwrap();
        let mut fds = [pollfd { fd: b.as_raw_fd(), events: POLLIN, revents: 0 }];
        // Nothing written yet: a zero-timeout poll must report nothing.
        assert_eq!(unsafe { poll(fds.as_mut_ptr(), 1, 0) }, 0);
        a.write_all(&[1]).unwrap();
        let n = unsafe { poll(fds.as_mut_ptr(), 1, 1000) };
        assert_eq!(n, 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
    }
}
