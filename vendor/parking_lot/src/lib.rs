//! Offline stand-in for `parking_lot`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors `Mutex`/`RwLock` wrappers over `std::sync` with
//! parking_lot's poison-free API (`lock()`/`read()`/`write()` return
//! guards directly). A poisoned std lock is recovered with
//! `into_inner` — matching parking_lot, which has no poisoning at all.

use std::sync::{self, TryLockError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
