//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a minimal harness with criterion's macro/API shape:
//! `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `Throughput` and
//! `BenchmarkId`. Measurement is a fixed-budget loop reporting the
//! mean iteration time — no statistics, no HTML reports — enough for
//! `cargo bench` to build, run and print comparable numbers.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink (same contract as criterion's).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How a benchmark's throughput is reported.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark's display name within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter`.
    mean_nanos: f64,
    budget: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call (also primes lazy state).
        black_box(f());
        let mut iters: u64 = 0;
        let start = Instant::now();
        let mut elapsed;
        loop {
            black_box(f());
            iters += 1;
            elapsed = start.elapsed();
            if elapsed >= self.budget {
                break;
            }
        }
        self.mean_nanos = elapsed.as_nanos() as f64 / iters as f64;
    }
}

/// The top-level harness handle.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { budget: Duration::from_millis(300) }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, group: name.into(), throughput: None }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self.budget, name, None, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; this harness has a fixed time
    /// budget instead of a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.budget = time;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.group, name);
        run_one(self.criterion.budget, &full, self.throughput, f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.group, id.name);
        run_one(self.criterion.budget, &full, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    budget: Duration,
    name: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher { mean_nanos: 0.0, budget };
    f(&mut b);
    let per_iter = b.mean_nanos;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 * 1e9 / per_iter)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 * 1e9 / per_iter)
        }
        _ => String::new(),
    };
    println!("bench {name:<56} {per_iter:>14.1} ns/iter{rate}");
}

/// Groups benchmark functions under one callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// The bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion { budget: Duration::from_millis(5) };
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(1)).sample_size(10);
            g.bench_function("work", |b| {
                b.iter(|| {
                    ran += 1;
                    black_box(ran)
                })
            });
            g.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        c.bench_function("top", |b| b.iter(|| black_box(1 + 1)));
        assert!(ran > 0, "payload executed");
    }
}
