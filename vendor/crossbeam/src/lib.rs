//! Offline stand-in for `crossbeam`.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the two pieces it uses — `channel` (unbounded MPMC with
//! disconnect semantics) and `queue::SegQueue` — built on
//! `std::sync::{Mutex, Condvar}`. Semantics mirror the real crate:
//! both `Sender` and `Receiver` are `Clone + Send + Sync`; `recv`
//! returns `Disconnected` only after the queue is drained *and* every
//! sender is gone; `send` fails once all receivers are gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half; cloneable (messages go to exactly one receiver).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// The message could not be sent because all receivers dropped.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// All senders dropped and the queue is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            st.queue.push_back(msg);
            drop(st);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap_or_else(|e| e.into_inner()).senders += 1;
            Sender { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // Wake receivers so they observe the disconnect.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            match st.queue.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.ready.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) =
                    self.chan.ready.wait_timeout(st, left).unwrap_or_else(|e| e.into_inner());
                st = guard;
                if res.timed_out() && st.queue.is_empty() && st.senders > 0 {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap_or_else(|e| e.into_inner()).receivers += 1;
            Receiver { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.state.lock().unwrap_or_else(|e| e.into_inner()).receivers -= 1;
        }
    }
}

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC FIFO (the real crate's is lock-free; this one
    /// trades a mutex for zero dependencies — contention on it is the
    /// task-buffer push/pop, which the callers already amortize).
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        pub fn new() -> Self {
            SegQueue { inner: Mutex::new(VecDeque::new()) }
        }

        pub fn push(&self, value: T) {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).pop_front()
        }

        pub fn len(&self) -> usize {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            SegQueue::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use super::queue::SegQueue;
    use std::time::Duration;

    #[test]
    fn channel_fifo_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(3).unwrap();
        drop(tx2);
        // Drains the queue before reporting the disconnect.
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(3));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn segqueue_fifo() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }
}
