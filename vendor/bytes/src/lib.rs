//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the minimal `Buf`/`BufMut` surface `gthinker-task`'s codec
//! actually uses: little-endian fixed-width reads that advance a
//! `&[u8]` cursor, and the matching appends onto a `Vec<u8>`. The
//! method names and semantics match the real crate exactly, so swapping
//! the genuine dependency back in is a one-line `Cargo.toml` change.

macro_rules! get_le {
    ($name:ident, $ty:ty) => {
        /// Reads a little-endian value from the front of the buffer,
        /// advancing past it. Panics when the buffer is too short
        /// (callers bounds-check via [`Buf::remaining`] first).
        fn $name(&mut self) -> $ty;
    };
}

/// Read side: a cursor over immutable bytes.
pub trait Buf {
    /// Bytes left between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    get_le!(get_u16_le, u16);
    get_le!(get_u32_le, u32);
    get_le!(get_u64_le, u64);
    get_le!(get_i64_le, i64);
    get_le!(get_f64_le, f64);
}

macro_rules! impl_get_le {
    ($name:ident, $ty:ty) => {
        fn $name(&mut self) -> $ty {
            const N: usize = std::mem::size_of::<$ty>();
            let mut arr = [0u8; N];
            arr.copy_from_slice(&self[..N]);
            *self = &self[N..];
            <$ty>::from_le_bytes(arr)
        }
    };
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }

    impl_get_le!(get_u16_le, u16);
    impl_get_le!(get_u32_le, u32);
    impl_get_le!(get_u64_le, u64);
    impl_get_le!(get_i64_le, i64);
    impl_get_le!(get_f64_le, f64);
}

macro_rules! put_le {
    ($name:ident, $ty:ty) => {
        /// Appends the little-endian encoding of `v`.
        fn $name(&mut self, v: $ty);
    };
}

/// Write side: an append-only byte sink.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a raw byte slice.
    fn put_slice(&mut self, src: &[u8]);
    put_le!(put_u16_le, u16);
    put_le!(put_u32_le, u32);
    put_le!(put_u64_le, u64);
    put_le!(put_i64_le, i64);
    put_le!(put_f64_le, f64);
}

macro_rules! impl_put_le {
    ($name:ident, $ty:ty) => {
        fn $name(&mut self, v: $ty) {
            self.extend_from_slice(&v.to_le_bytes());
        }
    };
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    impl_put_le!(put_u16_le, u16);
    impl_put_le!(put_u32_le, u32);
    impl_put_le!(put_u64_le, u64);
    impl_put_le!(put_i64_le, i64);
    impl_put_le!(put_f64_le, f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_match_le_layout() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_i64_le(-42);
        buf.put_f64_le(1.5);
        buf.put_slice(b"xyz");

        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 3);
        r.advance(1);
        assert_eq!(r, b"yz");
    }
}
