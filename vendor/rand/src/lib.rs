//! Offline stand-in for `rand` 0.8.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the surface it uses: `StdRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range` over primitive ranges, `Rng::gen_bool` and
//! `SliceRandom::shuffle`. The generator is xoshiro256++ seeded via
//! SplitMix64 — a different stream than the real crate's ChaCha12, but
//! every caller in this workspace only relies on *determinism for a
//! given seed*, never on a specific stream.

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $ty
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $ty
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (public domain), seeded through SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!(f >= f64::EPSILON && f < 1.0);
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
            let i: u64 = rng.gen_range(5..=5);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
