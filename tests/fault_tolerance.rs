//! Suspend/resume checkpointing: a job interrupted mid-flight must,
//! after resuming from its checkpoint, produce exactly the result of
//! an uninterrupted run.

use gthinker_apps::{MaxCliqueApp, TriangleApp};
use gthinker_core::prelude::*;
use gthinker_graph::gen;
use std::sync::Arc;
use std::time::Duration;

fn checkpoint_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("gthinker-ft-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Runs with a suspension deadline; resumes (repeatedly, if a resumed
/// run suspends again) until completion; returns the final global.
fn run_with_interruptions<A: gthinker_core::App>(
    app: impl Fn() -> A,
    graph: &gthinker_graph::graph::Graph,
    mut cfg: JobConfig,
    tag: &str,
) -> (<A::Agg as gthinker_core::Aggregator>::Global, usize) {
    cfg.checkpoint_dir = Some(checkpoint_dir(tag));
    let mut suspensions = 0usize;
    let mut result = run_job(Arc::new(app()), graph, &cfg).unwrap();
    loop {
        match result.outcome {
            JobOutcome::Completed => return (result.global, suspensions),
            JobOutcome::Suspended { checkpoint } => {
                suspensions += 1;
                assert!(suspensions < 50, "job never finishes");
                // Allow more time per resumed attempt.
                let mut next = cfg.clone();
                next.suspend_after = cfg.suspend_after.map(|d| d * 2u32.pow(suspensions as u32));
                result = resume_job(Arc::new(app()), graph, &next, &checkpoint).unwrap();
            }
            JobOutcome::Failed { worker } => {
                panic!("no faults are injected here, yet worker {worker:?} was declared dead")
            }
        }
    }
}

#[test]
fn triangle_count_survives_suspension() {
    let g = gen::barabasi_albert(3_000, 6, 5);
    let expected =
        run_job(Arc::new(TriangleApp), &g, &JobConfig::single_machine(2)).unwrap().global;
    let mut cfg = JobConfig::cluster(2, 2);
    cfg.suspend_after = Some(Duration::from_millis(120));
    let (global, suspensions) = run_with_interruptions(|| TriangleApp, &g, cfg, "tc");
    assert_eq!(global, expected);
    // The deadline is tuned to interrupt this workload at least once;
    // if the machine is so fast it finished first, the test still
    // validated the result (but log it).
    if suspensions == 0 {
        eprintln!("note: job completed before the suspension deadline");
    }
}

#[test]
fn max_clique_survives_suspension() {
    let base = gen::barabasi_albert(1_500, 6, 6);
    let (g, planted) = gen::plant_clique(&base, 12, 7);
    let expected = run_job(Arc::new(MaxCliqueApp::default()), &g, &JobConfig::single_machine(2))
        .unwrap()
        .global;
    assert!(expected.len() >= planted.len());
    let mut cfg = JobConfig::cluster(2, 2);
    cfg.suspend_after = Some(Duration::from_millis(100));
    let (global, _suspensions) = run_with_interruptions(MaxCliqueApp::default, &g, cfg, "mcf");
    assert_eq!(global.len(), expected.len());
    for i in 0..global.len() {
        for j in (i + 1)..global.len() {
            assert!(g.has_edge(global[i], global[j]));
        }
    }
}

#[test]
fn immediate_suspension_checkpoints_everything() {
    // Suspend before any meaningful progress: the checkpoint carries
    // essentially the whole job.
    let g = gen::barabasi_albert(2_000, 5, 8);
    let expected =
        run_job(Arc::new(TriangleApp), &g, &JobConfig::single_machine(2)).unwrap().global;
    let mut cfg = JobConfig::cluster(2, 2);
    cfg.suspend_after = Some(Duration::from_millis(1));
    let (global, _) = run_with_interruptions(|| TriangleApp, &g, cfg, "early");
    assert_eq!(global, expected);
}

#[test]
fn resume_with_wrong_topology_is_rejected() {
    let g = gen::gnp(200, 0.05, 9);
    let mut cfg = JobConfig::cluster(2, 1);
    cfg.suspend_after = Some(Duration::from_millis(1));
    cfg.checkpoint_dir = Some(checkpoint_dir("wrong-topo"));
    let result = run_job(Arc::new(TriangleApp), &g, &cfg).unwrap();
    let JobOutcome::Suspended { checkpoint } = result.outcome else {
        eprintln!("note: job finished before suspension; skipping");
        return;
    };
    let bad = JobConfig::cluster(3, 1);
    let err = resume_job(Arc::new(TriangleApp), &g, &bad, &checkpoint)
        .expect_err("mismatched worker count must be rejected");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    let msg = err.to_string();
    assert!(msg.contains("2 workers") && msg.contains("3"), "error should name both counts: {msg}");
}
