//! Randomized termination stress for the tail-latency scheduler: many
//! short jobs with more compers than cores, intra-worker stealing and
//! event-driven parking all active. Each iteration must (a) terminate
//! inside a watchdog window — a lost wakeup or a broken quiescence
//! argument shows up here as a hang — and (b) produce the same
//! aggregate and task count with stealing on and off.
//!
//! Sized so the whole test stays in CI budget: `ITERATIONS` jobs on
//! graphs of ≤ 90 vertices, each pair of runs well under a second.

use gthinker_apps::serial::triangle::count_triangles;
use gthinker_apps::TriangleApp;
use gthinker_core::prelude::*;
use gthinker_graph::gen;
use gthinker_net::router::LinkConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{mpsc, Arc};
use std::time::Duration;

const ITERATIONS: u64 = 50;
const WATCHDOG: Duration = Duration::from_secs(120);

/// One randomized scheduler configuration. Compers always outnumber
/// the host's cores in CI, so parked threads, fallback timeouts and
/// steal races all interleave on real preemption.
fn random_config(rng: &mut StdRng, intra_steal: bool) -> JobConfig {
    let mut cfg = JobConfig::cluster(rng.gen_range(1..4), rng.gen_range(3..9));
    cfg.task_batch = rng.gen_range(1..7); // tiny C: constant spill + steal churn
    cfg.request_batch = rng.gen_range(4..65);
    cfg.intra_steal = intra_steal;
    cfg.responders_per_worker = rng.gen_range(1..4);
    cfg.link = LinkConfig {
        latency: Duration::from_micros(rng.gen_range(0u64..300)),
        bytes_per_sec: Some(rng.gen_range(2_000_000u64..50_000_000)),
    };
    cfg
}

/// Runs one job on its own thread and panics if it outlives the
/// watchdog — a termination hang must fail the test, not wedge it.
fn run_with_watchdog(seed: u64, n: usize, cfg: JobConfig, label: &str) -> (u64, u64) {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let g = gen::gnp(n, 0.12, seed);
        let r = run_job(Arc::new(TriangleApp), &g, &cfg).unwrap();
        let _ = tx.send((r.global, r.total_tasks() as u64));
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(result) => {
            handle.join().unwrap();
            result
        }
        Err(_) => panic!("job hung past {WATCHDOG:?} (seed {seed}, {label})"),
    }
}

/// Randomized cluster-steal + straggler-split stress: multi-worker
/// jobs with cluster stealing racing tiny task batches, randomized
/// compute budgets and the usual comper oversubscription. Each
/// iteration must terminate (steal batches count as outstanding work
/// in the quiescence predicate — a leak hangs here) and produce the
/// serial triangle count with stealing on and off; same-budget runs
/// must also agree on the total task count, since splitting is
/// deterministic and steals only move tasks, never create them.
#[test]
fn randomized_cluster_steal_jobs_terminate_and_agree() {
    const STEAL_ITERATIONS: u64 = 12;
    for iter in 0..STEAL_ITERATIONS {
        let mut rng = StdRng::seed_from_u64(0x57EA1 ^ iter);
        let n = rng.gen_range(40..91);
        let graph_seed = rng.gen();
        let expected = count_triangles(&gen::gnp(n, 0.12, graph_seed));
        let budget = if rng.gen_bool(0.7) { Some(rng.gen_range(1u64..4)) } else { None };

        let intra = rng.gen_bool(0.5);
        let mut steal_cfg = random_config(&mut rng, intra);
        steal_cfg.num_workers = rng.gen_range(2..4);
        steal_cfg.work_stealing = true;
        steal_cfg.compute_budget = budget;
        steal_cfg.sync_interval = Duration::from_millis(rng.gen_range(2u64..10));

        let mut plain_cfg = steal_cfg.clone();
        plain_cfg.work_stealing = false;

        let (agg_steal, tasks_steal) =
            run_with_watchdog(graph_seed, n, steal_cfg, "cluster-steal on");
        let (agg_plain, tasks_plain) =
            run_with_watchdog(graph_seed, n, plain_cfg, "cluster-steal off");

        assert_eq!(agg_steal, expected, "steal run wrong (iter {iter}, seed {graph_seed})");
        assert_eq!(agg_plain, expected, "no-steal run wrong (iter {iter}, seed {graph_seed})");
        assert_eq!(
            tasks_steal, tasks_plain,
            "task counts diverged (iter {iter}, seed {graph_seed}, budget {budget:?})"
        );
    }
}

#[test]
fn randomized_short_jobs_terminate_and_agree() {
    for iter in 0..ITERATIONS {
        // Deterministically seeded per iteration so a CI failure
        // reproduces locally from the printed seed alone.
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ iter);
        let n = rng.gen_range(40..91);
        let graph_seed = rng.gen();
        let expected = count_triangles(&gen::gnp(n, 0.12, graph_seed));

        let steal_cfg = random_config(&mut rng, true);
        let plain_cfg = random_config(&mut rng, false);
        let (agg_steal, tasks_steal) =
            run_with_watchdog(graph_seed, n, steal_cfg, "intra-steal on");
        let (agg_plain, tasks_plain) =
            run_with_watchdog(graph_seed, n, plain_cfg, "intra-steal off");

        assert_eq!(agg_steal, expected, "steal run wrong (iter {iter}, seed {graph_seed})");
        assert_eq!(agg_plain, expected, "no-steal run wrong (iter {iter}, seed {graph_seed})");
        assert_eq!(
            tasks_steal, tasks_plain,
            "task counts diverged (iter {iter}, seed {graph_seed})"
        );
    }
}
