//! Torture tests: every adverse condition at once — tiny task batches
//! (constant spilling), a starved vertex cache (constant GC), slow
//! lossy-feeling links (high latency + low bandwidth), work stealing,
//! and repeated suspension — must never change an answer.

use gthinker_apps::serial::triangle::count_triangles;
use gthinker_apps::{BundledTriangleApp, MaxCliqueApp, MaximalCliqueApp, TriangleApp};
use gthinker_core::prelude::*;
use gthinker_graph::gen;
use gthinker_net::router::LinkConfig;
use std::sync::Arc;
use std::time::Duration;

fn torture_config() -> JobConfig {
    let mut cfg = JobConfig::cluster(3, 2);
    cfg.task_batch = 3; // spill constantly
    cfg.cache.capacity = 32; // evict constantly
    cfg.cache.num_buckets = 8;
    cfg.cache.alpha = 0.02; // eager GC
    cfg.request_batch = 16;
    cfg.link = LinkConfig { latency: Duration::from_micros(500), bytes_per_sec: Some(2_000_000) };
    cfg
}

#[test]
fn triangle_count_survives_torture() {
    let g = gen::barabasi_albert(700, 5, 31);
    let expected = count_triangles(&g);
    let r = run_job(Arc::new(TriangleApp), &g, &torture_config()).unwrap();
    assert_eq!(r.global, expected);
    let evictions: u64 = r.workers.iter().map(|w| w.cache.evictions).sum();
    assert!(evictions > 0, "a 32-entry cache must evict");
}

#[test]
fn max_clique_survives_torture_with_decomposition() {
    let base = gen::gnp(250, 0.12, 41);
    let (g, planted) = gen::plant_clique(&base, 10, 42);
    let reference =
        run_job(Arc::new(MaxCliqueApp::default()), &g, &JobConfig::single_machine(1)).unwrap();
    assert!(reference.global.len() >= planted.len());
    let mut cfg = torture_config();
    cfg.suspend_after = None;
    let r = run_job(Arc::new(MaxCliqueApp::with_tau(12)), &g, &cfg).unwrap();
    assert_eq!(r.global.len(), reference.global.len());
    // Decomposition bursts through C = 3 queues must have spilled.
    assert!(r.total_spill_bytes() > 0, "τ=12 decomposition with C=3 must spill");
}

#[test]
fn maximal_cliques_survive_torture() {
    let g = gen::gnp(150, 0.1, 51);
    let expected =
        run_job(Arc::new(MaximalCliqueApp), &g, &JobConfig::single_machine(1)).unwrap().global;
    let r = run_job(Arc::new(MaximalCliqueApp), &g, &torture_config()).unwrap();
    assert_eq!(r.global, expected);
}

#[test]
fn bundled_triangles_survive_torture_plus_suspension() {
    let g = gen::barabasi_albert(900, 4, 61);
    let expected = count_triangles(&g);
    let dir = std::env::temp_dir().join(format!("gthinker-stress-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = torture_config();
    cfg.suspend_after = Some(Duration::from_millis(200));
    cfg.checkpoint_dir = Some(dir);
    let mut attempts = 0;
    let mut result = run_job(Arc::new(BundledTriangleApp::new(8)), &g, &cfg).unwrap();
    loop {
        match result.outcome {
            JobOutcome::Completed => break,
            JobOutcome::Failed { worker } => {
                panic!("no faults are injected here, yet worker {worker:?} was declared dead")
            }
            JobOutcome::Suspended { checkpoint } => {
                attempts += 1;
                assert!(attempts < 30, "never converges");
                cfg.suspend_after = Some(Duration::from_millis(200 * (1 << attempts.min(4))));
                result = resume_job(Arc::new(BundledTriangleApp::new(8)), &g, &cfg, &checkpoint)
                    .unwrap();
            }
        }
    }
    assert_eq!(result.global, expected);
}
