//! All engines — G-thinker and every baseline — must agree on the
//! answers; they may only differ in time and resource usage.

use gthinker_apps::{MaxCliqueApp, TriangleApp};
use gthinker_baselines::arabesque::{
    run_filter_process, ArabesqueMaxClique, ArabesqueTriangles, FilterProcessConfig,
};
use gthinker_baselines::gminer::{gminer_max_clique, GMinerConfig};
use gthinker_baselines::nuri::{nuri_max_clique, NuriConfig};
use gthinker_baselines::rstream::{rstream_triangle_count, RStreamConfig};
use gthinker_baselines::vertexcentric::{run_bsp, BspConfig, BspMaxClique, BspTriangleCount};
use gthinker_core::prelude::*;
use gthinker_graph::gen;
use std::sync::Arc;

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("gthinker-ba-{tag}-{}", std::process::id()))
}

#[test]
fn every_engine_counts_the_same_triangles() {
    let g = gen::barabasi_albert(400, 5, 2);
    let expected =
        run_job(Arc::new(TriangleApp), &g, &JobConfig::single_machine(2)).unwrap().global;

    let bsp = run_bsp(&g, &BspTriangleCount::new(), &BspConfig::default());
    assert_eq!(bsp.result.unwrap(), expected, "vertex-centric");

    let arab = ArabesqueTriangles::new();
    let out = run_filter_process(&g, &arab, &FilterProcessConfig::default());
    assert!(out.completed());
    assert_eq!(arab.count(), expected, "arabesque-like");

    let rs = rstream_triangle_count(&g, &RStreamConfig { dir: tmp("rs"), ..Default::default() });
    assert_eq!(rs.result.unwrap(), expected, "rstream-like");
}

#[test]
fn every_engine_finds_the_same_max_clique() {
    let base = gen::barabasi_albert(300, 4, 3);
    let (g, planted) = gen::plant_clique(&base, 9, 4);
    let expected = run_job(Arc::new(MaxCliqueApp::default()), &g, &JobConfig::single_machine(2))
        .unwrap()
        .global;
    assert!(expected.len() >= planted.len());

    let bsp = run_bsp(&g, &BspMaxClique::new(), &BspConfig::default());
    assert_eq!(bsp.result.unwrap().len(), expected.len(), "vertex-centric");

    let arab = ArabesqueMaxClique::new(expected.len() + 2);
    let out = run_filter_process(&g, &arab, &FilterProcessConfig::default());
    assert!(out.completed());
    assert_eq!(arab.best().len(), expected.len(), "arabesque-like");

    let gm =
        gminer_max_clique(&g, &GMinerConfig { dir: tmp("gm"), threads: 2, ..Default::default() });
    assert_eq!(gm.result.unwrap().len(), expected.len(), "g-miner-like");

    let nuri = nuri_max_clique(&g, &NuriConfig { dir: tmp("nuri"), ..Default::default() });
    assert_eq!(nuri.result.unwrap().len(), expected.len(), "nuri-like");
}

#[test]
fn gthinker_spills_negligible_bytes_compared_to_gminer() {
    // The paper: G-thinker's disk usage is negligible because refills
    // prioritize spilled tasks, whereas G-Miner's disk queue holds
    // every task. Compare disk traffic on the same workload.
    let base = gen::barabasi_albert(500, 6, 4);
    let (g, _) = gen::plant_clique(&base, 10, 5);
    let gt =
        run_job(Arc::new(MaxCliqueApp::with_tau(64)), &g, &JobConfig::single_machine(2)).unwrap();
    let gm = gminer_max_clique(
        &g,
        &GMinerConfig { dir: tmp("spill"), threads: 2, tau: 64, ..Default::default() },
    );
    assert!(gm.completed());
    assert!(
        gm.peak_bytes > gt.total_spill_bytes(),
        "G-Miner wrote {} bytes to its disk queue, G-thinker spilled {}",
        gm.peak_bytes,
        gt.total_spill_bytes()
    );
}
