//! Determinism across topologies: every application must produce the
//! same answer no matter how many workers/compers run it, with or
//! without link latency and work stealing.

use gthinker_apps::{MaxCliqueApp, QuasiCliqueApp, TriangleApp};
use gthinker_core::prelude::*;
use gthinker_graph::gen;
use gthinker_net::router::LinkConfig;
use std::sync::Arc;
use std::time::Duration;

fn topologies() -> Vec<JobConfig> {
    let mut configs = vec![
        JobConfig::single_machine(1),
        JobConfig::single_machine(4),
        JobConfig::cluster(2, 2),
        JobConfig::cluster(5, 2),
    ];
    // High-latency links.
    let mut slow = JobConfig::cluster(3, 2);
    slow.link = LinkConfig { latency: Duration::from_millis(2), bytes_per_sec: Some(10_000_000) };
    configs.push(slow);
    // Work stealing disabled.
    let mut no_steal = JobConfig::cluster(4, 1);
    no_steal.work_stealing = false;
    configs.push(no_steal);
    configs
}

#[test]
fn triangle_count_invariant_across_topologies() {
    let g = gen::barabasi_albert(1_000, 5, 3);
    let reference =
        run_job(Arc::new(TriangleApp), &g, &JobConfig::single_machine(1)).unwrap().global;
    for (i, cfg) in topologies().into_iter().enumerate() {
        let r = run_job(Arc::new(TriangleApp), &g, &cfg).unwrap();
        assert_eq!(r.global, reference, "topology {i}");
    }
}

#[test]
fn max_clique_size_invariant_across_topologies() {
    let base = gen::barabasi_albert(500, 4, 9);
    let (g, planted) = gen::plant_clique(&base, 10, 14);
    let reference = run_job(Arc::new(MaxCliqueApp::default()), &g, &JobConfig::single_machine(1))
        .unwrap()
        .global;
    assert!(reference.len() >= planted.len());
    for (i, cfg) in topologies().into_iter().enumerate() {
        let r = run_job(Arc::new(MaxCliqueApp::default()), &g, &cfg).unwrap();
        assert_eq!(r.global.len(), reference.len(), "topology {i}");
    }
}

#[test]
fn quasi_clique_count_invariant_across_topologies() {
    let g = gen::gnp(80, 0.08, 31);
    let reference =
        run_job(Arc::new(QuasiCliqueApp::new(0.5, 3, 4)), &g, &JobConfig::single_machine(1))
            .unwrap()
            .global;
    for (i, cfg) in topologies().into_iter().enumerate() {
        let r = run_job(Arc::new(QuasiCliqueApp::new(0.5, 3, 4)), &g, &cfg).unwrap();
        assert_eq!(r.global, reference, "topology {i}");
    }
}

#[test]
fn repeated_runs_are_stable() {
    // The scheduler is nondeterministic; the answer must not be.
    let g = gen::barabasi_albert(600, 6, 17);
    let first = run_job(Arc::new(TriangleApp), &g, &JobConfig::cluster(3, 3)).unwrap().global;
    for _ in 0..3 {
        let r = run_job(Arc::new(TriangleApp), &g, &JobConfig::cluster(3, 3)).unwrap();
        assert_eq!(r.global, first);
    }
}

#[test]
fn work_stealing_moves_tasks_to_idle_workers() {
    // Hash partitioning spreads vertices evenly, so force imbalance
    // with compers: worker count high relative to work, low-latency
    // links, and verify stealing does not corrupt results (the
    // detailed accounting is exercised in the unit layer).
    let g = gen::barabasi_albert(2_000, 8, 23);
    let expected =
        run_job(Arc::new(TriangleApp), &g, &JobConfig::single_machine(2)).unwrap().global;
    let mut cfg = JobConfig::cluster(6, 1);
    cfg.task_batch = 4; // small batches → files exist → steals possible
    let r = run_job(Arc::new(TriangleApp), &g, &cfg).unwrap();
    assert_eq!(r.global, expected);
}
