//! Backend equivalence: every miner must produce the same answer on
//! the real TCP backend (one worker per "process", here one per
//! thread on a loopback mesh) as on the simulated router. This is the
//! contract that lets the sim backend stand in for a cluster in every
//! other test.

use gthinker_apps::{
    KPlexApp, MatchingApp, MaxCliqueApp, MaximalCliqueApp, Pattern, QuasiCliqueApp, TriangleApp,
};
use gthinker_core::prelude::*;
use gthinker_core::{run_worker_process_on, ClusterRole, WorkerStats};
use gthinker_graph::gen;
use gthinker_graph::graph::Graph;
use gthinker_graph::ids::WorkerId;
use gthinker_net::tcp::ClusterManifest;
use std::sync::Arc;
use std::time::Duration;

const WORKERS: usize = 3;
const RENDEZVOUS: Duration = Duration::from_secs(20);

/// Runs `app` on a 3-worker loopback TCP cluster (each worker on its
/// own thread, exactly the code path of three OS processes) and
/// returns the master's result plus every worker's stats.
fn run_tcp_cluster<A: App + Send + Sync + 'static>(
    app: Arc<A>,
    graph: &Graph,
    compers: usize,
) -> (JobResult<<<A as App>::Agg as Aggregator>::Global>, Vec<WorkerStats>) {
    let mut cfg = JobConfig::cluster(WORKERS, compers);
    cfg.sync_interval = Duration::from_millis(5);
    let (manifest, listeners) = ClusterManifest::loopback(WORKERS).expect("bind loopback");
    let graph = Arc::new(graph.clone());
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(w, listener)| {
            let app = Arc::clone(&app);
            let graph = Arc::clone(&graph);
            let cfg = cfg.clone();
            let manifest = manifest.clone();
            std::thread::spawn(move || {
                run_worker_process_on(
                    app,
                    &graph,
                    &cfg,
                    &manifest,
                    WorkerId(w as u16),
                    RENDEZVOUS,
                    listener,
                )
                .expect("cluster worker")
            })
        })
        .collect();
    let mut master = None;
    let mut stats = Vec::new();
    for h in handles {
        match h.join().expect("worker thread") {
            ClusterRole::Master(r) => {
                stats.push(r.workers[0].clone());
                master = Some(r);
            }
            ClusterRole::Worker(s, _) => stats.push(s),
        }
    }
    (master.expect("worker 0 is the master"), stats)
}

/// Sim reference for the same topology.
fn sim_reference<A: App>(
    app: Arc<A>,
    graph: &Graph,
    compers: usize,
) -> JobResult<<<A as App>::Agg as Aggregator>::Global> {
    run_job(app, graph, &JobConfig::cluster(WORKERS, compers)).expect("sim job")
}

/// All workers together must have moved real traffic: the job cannot
/// have quietly degenerated into a single-process run.
fn assert_traffic(stats: &[WorkerStats]) {
    let sent: u64 = stats.iter().map(|w| w.net_bytes_sent).sum();
    let received: u64 = stats.iter().map(|w| w.net_bytes_received).sum();
    assert!(sent > 0, "no bytes crossed the TCP mesh");
    assert!(received > 0, "no bytes were received off the TCP mesh");
}

#[test]
fn triangle_count_matches_sim() {
    let g = gen::barabasi_albert(600, 5, 17);
    let reference = sim_reference(Arc::new(TriangleApp), &g, 2).global;
    let (r, stats) = run_tcp_cluster(Arc::new(TriangleApp), &g, 2);
    assert_eq!(r.global, reference);
    assert!(matches!(r.outcome, JobOutcome::Completed));
    assert_traffic(&stats);
}

#[test]
fn max_clique_matches_sim() {
    let base = gen::barabasi_albert(400, 4, 23);
    let (g, planted) = gen::plant_clique(&base, 9, 27);
    let reference = sim_reference(Arc::new(MaxCliqueApp::default()), &g, 2).global;
    assert!(reference.len() >= planted.len());
    let (r, stats) = run_tcp_cluster(Arc::new(MaxCliqueApp::default()), &g, 2);
    assert_eq!(r.global.len(), reference.len());
    assert_traffic(&stats);
}

#[test]
fn maximal_cliques_match_sim() {
    let g = gen::gnp(150, 0.08, 41);
    let reference = sim_reference(Arc::new(MaximalCliqueApp), &g, 2).global;
    let (r, stats) = run_tcp_cluster(Arc::new(MaximalCliqueApp), &g, 2);
    assert_eq!(r.global, reference);
    assert_traffic(&stats);
}

#[test]
fn quasi_cliques_match_sim() {
    let g = gen::gnp(70, 0.1, 53);
    let app = || Arc::new(QuasiCliqueApp::new(0.6, 3, 4));
    let reference = sim_reference(app(), &g, 2).global;
    let (r, stats) = run_tcp_cluster(app(), &g, 2);
    assert_eq!(r.global, reference);
    assert_traffic(&stats);
}

#[test]
fn k_plexes_match_sim() {
    let g = gen::gnp(60, 0.12, 61);
    let app = || Arc::new(KPlexApp::new(2, 4, 5));
    let reference = sim_reference(app(), &g, 2).global;
    let (r, stats) = run_tcp_cluster(app(), &g, 2);
    assert_eq!(r.global, reference);
    assert_traffic(&stats);
}

#[test]
fn graph_matching_matches_sim() {
    let g = gen::random_labels(gen::gnp(120, 0.06, 71), 3, 0x1abe1);
    let labels = g.labels().expect("labeled").to_vec();
    let pattern = Pattern::triangle(
        gthinker_graph::ids::Label(0),
        gthinker_graph::ids::Label(1),
        gthinker_graph::ids::Label(2),
    );
    let app = || Arc::new(MatchingApp::new(pattern.clone(), labels.clone()));
    let reference = sim_reference(app(), &g, 2).global;
    let (r, stats) = run_tcp_cluster(app(), &g, 2);
    assert_eq!(r.global, reference);
    assert_traffic(&stats);
}

/// Lossless merge: the cluster-wide metrics the master assembles from
/// `MetricsReport`s must agree, worker by worker, with the snapshot
/// each worker kept for itself — for every counter that is stable by
/// the time the final report ships (work totals; byte counters keep
/// moving during the termination hand-shake and are excluded).
#[test]
fn cluster_metrics_reports_merge_losslessly() {
    let g = gen::barabasi_albert(400, 5, 77);
    let mut cfg = JobConfig::cluster(WORKERS, 2);
    cfg.sync_interval = Duration::from_millis(5);
    cfg.report_interval = Some(Duration::from_millis(20));
    let (manifest, listeners) = ClusterManifest::loopback(WORKERS).expect("bind loopback");
    let graph = Arc::new(g);
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(w, listener)| {
            let graph = Arc::clone(&graph);
            let cfg = cfg.clone();
            let manifest = manifest.clone();
            std::thread::spawn(move || {
                run_worker_process_on(
                    Arc::new(TriangleApp),
                    &graph,
                    &cfg,
                    &manifest,
                    WorkerId(w as u16),
                    RENDEZVOUS,
                    listener,
                )
                .expect("cluster worker")
            })
        })
        .collect();
    let mut master = None;
    let mut own: Vec<Option<MetricsSnapshot>> = vec![None; WORKERS];
    for (w, h) in handles.into_iter().enumerate() {
        match h.join().expect("worker thread") {
            ClusterRole::Master(r) => {
                assert_eq!(w, 0, "master is worker 0");
                master = Some(r);
            }
            ClusterRole::Worker(_, snap) => own[w] = Some(snap),
        }
    }
    let master = master.expect("worker 0 is the master");
    let merged = &master.metrics;
    assert_eq!(merged.workers.len(), WORKERS, "one merged entry per worker");

    let e2e_count =
        |s: &WorkerMetricsSnapshot| -> u64 { s.compers.iter().map(|c| c.e2e.count()).sum() };
    for (w, own_entry) in own.iter().enumerate().skip(1) {
        let own_snap = &own_entry.as_ref().expect("worker snapshot").workers[0];
        let m = &merged.workers[w];
        assert_eq!(m.tasks_finished, own_snap.tasks_finished, "worker {w}: tasks_finished");
        assert_eq!(m.compute_calls, own_snap.compute_calls, "worker {w}: compute_calls");
        assert_eq!(m.steals, own_snap.steals, "worker {w}: steals");
        assert_eq!(m.stolen_tasks, own_snap.stolen_tasks, "worker {w}: stolen_tasks");
        assert_eq!(m.split_tasks, own_snap.split_tasks, "worker {w}: split_tasks");
        assert_eq!(e2e_count(m), e2e_count(own_snap), "worker {w}: e2e samples");
    }
    // Every worker did real work that reached the master's view.
    for (w, m) in merged.workers.iter().enumerate() {
        assert!(m.compute_calls > 0, "worker {w} reported no compute");
    }
}

/// The manifest size must agree with the config; a mismatch is an
/// input error, not a hang.
#[test]
fn manifest_size_mismatch_is_rejected() {
    let g = gen::gnp(20, 0.2, 3);
    let (manifest, mut listeners) = ClusterManifest::loopback(2).expect("bind");
    let cfg = JobConfig::cluster(3, 1); // says 3, manifest says 2
    let err = run_worker_process_on(
        Arc::new(TriangleApp),
        &g,
        &cfg,
        &manifest,
        WorkerId(0),
        Duration::from_secs(1),
        listeners.remove(0),
    )
    .expect_err("mismatch must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
}
