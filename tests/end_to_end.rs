//! Cross-crate end-to-end tests: every application on every dataset
//! stand-in, checked against independent serial implementations.

use gthinker_apps::serial::triangle::count_triangles;
use gthinker_apps::{MatchingApp, MaxCliqueApp, Pattern, QuasiCliqueApp, TriangleApp};
use gthinker_core::prelude::*;
use gthinker_graph::datasets::{self, DatasetKind};
use gthinker_graph::gen;
use std::sync::Arc;

#[test]
fn triangle_counts_on_all_dataset_standins() {
    for &kind in &DatasetKind::ALL {
        let d = datasets::generate(kind, 0.05);
        let expected = count_triangles(&d.graph);
        let result =
            run_job(Arc::new(TriangleApp), &d.graph, &JobConfig::single_machine(4)).unwrap();
        assert_eq!(result.global, expected, "{}", kind.name());
    }
}

#[test]
fn max_clique_finds_planted_clique_on_all_standins() {
    for &kind in &DatasetKind::ALL {
        let d = datasets::generate(kind, 0.05);
        let result =
            run_job(Arc::new(MaxCliqueApp::default()), &d.graph, &JobConfig::single_machine(4))
                .unwrap();
        assert!(
            result.global.len() >= d.planted_clique.len(),
            "{}: found {} < planted {}",
            kind.name(),
            result.global.len(),
            d.planted_clique.len()
        );
        // Witness is a real clique.
        let c = &result.global;
        for i in 0..c.len() {
            for j in (i + 1)..c.len() {
                assert!(d.graph.has_edge(c[i], c[j]));
            }
        }
    }
}

#[test]
fn matching_distributed_agrees_with_brute_force() {
    let g = gen::random_labels(gen::gnp(40, 0.15, 5), 2, 6);
    let pattern = Pattern::triangle(Label(0), Label(0), Label(1));
    // Brute force on the full graph.
    let mut sg = gthinker_graph::subgraph::Subgraph::new();
    for v in g.vertices() {
        sg.add_labeled_vertex(v, g.label(v).unwrap(), g.neighbors(v).clone());
    }
    let expected =
        gthinker_apps::serial::matching::count_embeddings_brute(&sg.to_local(), &pattern);
    let result = run_job(
        Arc::new(MatchingApp::new(pattern, g.labels().unwrap().to_vec())),
        &g,
        &JobConfig::cluster(3, 2),
    )
    .unwrap();
    assert_eq!(result.global, expected);
}

#[test]
fn quasi_cliques_distributed_agree_with_brute_force() {
    let g = gen::gnp(14, 0.3, 8);
    let mut sg = gthinker_graph::subgraph::Subgraph::new();
    for v in g.vertices() {
        sg.add_vertex(v, g.neighbors(v).clone());
    }
    let expected =
        gthinker_apps::serial::quasi::count_quasi_cliques_brute(&sg.to_local(), 0.6, 3, 5);
    let result =
        run_job(Arc::new(QuasiCliqueApp::new(0.6, 3, 5)), &g, &JobConfig::cluster(2, 2)).unwrap();
    assert_eq!(result.global, expected);
}

#[test]
fn spilling_path_preserves_results() {
    // Spills happen when add_task bursts overflow Q_task: MCF with a
    // tiny τ decomposes every top-level task into many children, and
    // C = 2 (capacity 6) cannot absorb them.
    let base = gen::gnp(120, 0.2, 12);
    let (g, planted) = gen::plant_clique(&base, 9, 13);
    let mut cfg = JobConfig::single_machine(2);
    cfg.task_batch = 2;
    let result = run_job(Arc::new(MaxCliqueApp::with_tau(6)), &g, &cfg).unwrap();
    assert!(result.global.len() >= planted.len());
    assert!(
        result.total_spill_bytes() > 0,
        "τ=6 decomposition with C=2 must have spilled at least one batch"
    );
}

#[test]
fn decomposition_under_pressure_is_correct() {
    // τ = 8 forces MCF to decompose nearly every top-level task, and a
    // small cache forces constant GC, together stressing the whole
    // pipeline.
    let base = gen::gnp(200, 0.15, 21);
    let (g, planted) = gen::plant_clique(&base, 9, 22);
    let mut cfg = JobConfig::cluster(3, 2);
    cfg.cache.capacity = 64;
    cfg.cache.num_buckets = 16;
    let result = run_job(Arc::new(MaxCliqueApp::with_tau(8)), &g, &cfg).unwrap();
    assert!(result.global.len() >= planted.len());
}
