//! Storage-backend equivalence: every miner must produce the same
//! answer running off the memory-mapped compressed format (lazy
//! per-vertex decode, trim-at-decode) as off the in-RAM graph
//! (trim-then-partition). This is the contract that lets `.gtc` files
//! stand in for loaded graphs everywhere — sim and TCP backends alike.

use gthinker_apps::{
    KPlexApp, MatchingApp, MaxCliqueApp, MaximalCliqueApp, Pattern, QuasiCliqueApp, TriangleApp,
};
use gthinker_core::prelude::*;
use gthinker_core::{run_worker_process_source_on, ClusterRole};
use gthinker_graph::compressed::{write_compressed, CompressedGraph};
use gthinker_graph::gen;
use gthinker_graph::graph::Graph;
use gthinker_graph::ids::WorkerId;
use gthinker_net::tcp::ClusterManifest;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const WORKERS: usize = 3;
const COMPERS: usize = 2;

/// Encodes `g` to a scratch `.gtc` file and memory-maps it back.
/// The file is deleted on drop so failed tests don't litter /tmp.
struct MappedCopy {
    path: PathBuf,
    graph: Arc<CompressedGraph>,
}

impl MappedCopy {
    fn of(g: &Graph, name: &str) -> MappedCopy {
        let path =
            std::env::temp_dir().join(format!("gthinker-eq-{}-{name}.gtc", std::process::id()));
        write_compressed(g, &path).expect("encode");
        let graph = Arc::new(CompressedGraph::open(&path).expect("map"));
        MappedCopy { path, graph }
    }

    fn source(&self) -> GraphSource<'static> {
        GraphSource::Mapped(Arc::clone(&self.graph))
    }
}

impl Drop for MappedCopy {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Runs `app` on both backings over the sim router and returns
/// (in-RAM global, mapped global).
fn sim_both<A: App>(
    app: impl Fn() -> Arc<A>,
    g: &Graph,
    name: &str,
) -> (<<A as App>::Agg as Aggregator>::Global, <<A as App>::Agg as Aggregator>::Global) {
    let cfg = JobConfig::cluster(WORKERS, COMPERS);
    let ram = run_job(app(), g, &cfg).expect("ram job");
    assert!(matches!(ram.outcome, JobOutcome::Completed));
    let mapped_copy = MappedCopy::of(g, name);
    let mapped = run_job_on(app(), mapped_copy.source(), &cfg).expect("mapped job");
    assert!(matches!(mapped.outcome, JobOutcome::Completed));
    (ram.global, mapped.global)
}

#[test]
fn triangle_count_equal_across_backends() {
    let g = gen::barabasi_albert(500, 5, 97);
    let (ram, mapped) = sim_both(|| Arc::new(TriangleApp), &g, "tc");
    assert_eq!(ram, mapped);
}

#[test]
fn max_clique_equal_across_backends() {
    // MaxCliqueApp installs a trimmer, so this exercises the
    // trim-at-decode path against eager trim-then-partition.
    let base = gen::barabasi_albert(300, 4, 101);
    let (g, planted) = gen::plant_clique(&base, 8, 103);
    let (ram, mapped) = sim_both(|| Arc::new(MaxCliqueApp::default()), &g, "mcf");
    assert!(ram.len() >= planted.len());
    assert_eq!(ram.len(), mapped.len(), "witness may differ; the optimum size may not");
}

#[test]
fn maximal_cliques_equal_across_backends() {
    let g = gen::gnp(130, 0.08, 107);
    let (ram, mapped) = sim_both(|| Arc::new(MaximalCliqueApp), &g, "mc");
    assert_eq!(ram, mapped);
}

#[test]
fn quasi_cliques_equal_across_backends() {
    let g = gen::gnp(60, 0.12, 109);
    let (ram, mapped) = sim_both(|| Arc::new(QuasiCliqueApp::new(0.6, 3, 4)), &g, "qc");
    assert_eq!(ram, mapped);
}

#[test]
fn k_plexes_equal_across_backends() {
    let g = gen::gnp(55, 0.12, 113);
    let (ram, mapped) = sim_both(|| Arc::new(KPlexApp::new(2, 4, 5)), &g, "kp");
    assert_eq!(ram, mapped);
}

#[test]
fn graph_matching_equal_across_backends() {
    // Labeled graph: the label table must round-trip through the
    // compressed file and reach the matching filter on every worker.
    let g = gen::random_labels(gen::gnp(110, 0.06, 127), 3, 0xfeed);
    let labels = g.labels().expect("labeled").to_vec();
    let pattern = Pattern::triangle(
        gthinker_graph::ids::Label(0),
        gthinker_graph::ids::Label(1),
        gthinker_graph::ids::Label(2),
    );
    let mapped_labels = MappedCopy::of(&g, "gm-labels").graph.labels().expect("mapped labels");
    assert_eq!(labels, mapped_labels);
    let (ram, mapped) =
        sim_both(|| Arc::new(MatchingApp::new(pattern.clone(), labels.clone())), &g, "gm");
    assert_eq!(ram, mapped);
}

/// The TCP scenario: three loopback worker threads, each opening the
/// compressed source, versus the in-RAM sim reference. Exercises the
/// responder path serving lazily decoded lists over the wire.
#[test]
fn tcp_cluster_on_mapped_graph_matches_in_ram_sim() {
    let g = gen::barabasi_albert(400, 4, 131);
    let reference = run_job(Arc::new(TriangleApp), &g, &JobConfig::cluster(WORKERS, COMPERS))
        .expect("sim job")
        .global;

    let mapped = MappedCopy::of(&g, "tcp");
    let mut cfg = JobConfig::cluster(WORKERS, COMPERS);
    cfg.sync_interval = Duration::from_millis(5);
    let (manifest, listeners) = ClusterManifest::loopback(WORKERS).expect("bind loopback");
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(w, listener)| {
            let source = mapped.source();
            let cfg = cfg.clone();
            let manifest = manifest.clone();
            std::thread::spawn(move || {
                run_worker_process_source_on(
                    Arc::new(TriangleApp),
                    source,
                    &cfg,
                    &manifest,
                    WorkerId(w as u16),
                    Duration::from_secs(20),
                    listener,
                )
                .expect("cluster worker")
            })
        })
        .collect();
    let mut master = None;
    let mut sent = 0u64;
    for h in handles {
        match h.join().expect("worker thread") {
            ClusterRole::Master(r) => {
                sent += r.workers[0].net_bytes_sent;
                master = Some(r);
            }
            ClusterRole::Worker(s, _) => sent += s.net_bytes_sent,
        }
    }
    let master = master.expect("worker 0 is the master");
    assert_eq!(master.global, reference);
    assert!(matches!(master.outcome, JobOutcome::Completed));
    assert!(sent > 0, "no bytes crossed the TCP mesh");
}
