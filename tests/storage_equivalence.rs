//! Storage-backend equivalence: every miner must produce the same
//! answer running off the memory-mapped compressed format (lazy
//! per-vertex decode, trim-at-decode) as off the in-RAM graph
//! (trim-then-partition). This is the contract that lets `.gtc` files
//! stand in for loaded graphs everywhere — sim and TCP backends alike.

use gthinker_apps::{
    KPlexApp, MatchingApp, MaxCliqueApp, MaximalCliqueApp, Pattern, QuasiCliqueApp, TriangleApp,
};
use gthinker_core::prelude::*;
use gthinker_core::{run_job_with_recovery_on, run_worker_process_source_on, ClusterRole};
use gthinker_graph::compressed::{write_compressed, CompressedGraph};
use gthinker_graph::gen;
use gthinker_graph::graph::Graph;
use gthinker_graph::ids::WorkerId;
use gthinker_net::fault::{CrashSchedule, FaultConfig};
use gthinker_net::tcp::ClusterManifest;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const WORKERS: usize = 3;
const COMPERS: usize = 2;

/// Encodes `g` to a scratch `.gtc` file and memory-maps it back.
/// The file is deleted on drop so failed tests don't litter /tmp.
struct MappedCopy {
    path: PathBuf,
    graph: Arc<CompressedGraph>,
}

impl MappedCopy {
    fn of(g: &Graph, name: &str) -> MappedCopy {
        let path =
            std::env::temp_dir().join(format!("gthinker-eq-{}-{name}.gtc", std::process::id()));
        write_compressed(g, &path).expect("encode");
        let graph = Arc::new(CompressedGraph::open(&path).expect("map"));
        MappedCopy { path, graph }
    }

    fn source(&self) -> GraphSource<'static> {
        GraphSource::Mapped(Arc::clone(&self.graph))
    }
}

impl Drop for MappedCopy {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Runs `app` on both backings over the sim router and returns
/// (in-RAM global, mapped global).
fn sim_both<A: App>(
    app: impl Fn() -> Arc<A>,
    g: &Graph,
    name: &str,
) -> (<<A as App>::Agg as Aggregator>::Global, <<A as App>::Agg as Aggregator>::Global) {
    let cfg = JobConfig::cluster(WORKERS, COMPERS);
    let ram = run_job(app(), g, &cfg).expect("ram job");
    assert!(matches!(ram.outcome, JobOutcome::Completed));
    let mapped_copy = MappedCopy::of(g, name);
    let mapped = run_job_on(app(), mapped_copy.source(), &cfg).expect("mapped job");
    assert!(matches!(mapped.outcome, JobOutcome::Completed));
    (ram.global, mapped.global)
}

#[test]
fn triangle_count_equal_across_backends() {
    let g = gen::barabasi_albert(500, 5, 97);
    let (ram, mapped) = sim_both(|| Arc::new(TriangleApp), &g, "tc");
    assert_eq!(ram, mapped);
}

#[test]
fn max_clique_equal_across_backends() {
    // MaxCliqueApp installs a trimmer, so this exercises the
    // trim-at-decode path against eager trim-then-partition.
    let base = gen::barabasi_albert(300, 4, 101);
    let (g, planted) = gen::plant_clique(&base, 8, 103);
    let (ram, mapped) = sim_both(|| Arc::new(MaxCliqueApp::default()), &g, "mcf");
    assert!(ram.len() >= planted.len());
    assert_eq!(ram.len(), mapped.len(), "witness may differ; the optimum size may not");
}

#[test]
fn maximal_cliques_equal_across_backends() {
    let g = gen::gnp(130, 0.08, 107);
    let (ram, mapped) = sim_both(|| Arc::new(MaximalCliqueApp), &g, "mc");
    assert_eq!(ram, mapped);
}

#[test]
fn quasi_cliques_equal_across_backends() {
    let g = gen::gnp(60, 0.12, 109);
    let (ram, mapped) = sim_both(|| Arc::new(QuasiCliqueApp::new(0.6, 3, 4)), &g, "qc");
    assert_eq!(ram, mapped);
}

#[test]
fn k_plexes_equal_across_backends() {
    let g = gen::gnp(55, 0.12, 113);
    let (ram, mapped) = sim_both(|| Arc::new(KPlexApp::new(2, 4, 5)), &g, "kp");
    assert_eq!(ram, mapped);
}

#[test]
fn graph_matching_equal_across_backends() {
    // Labeled graph: the label table must round-trip through the
    // compressed file and reach the matching filter on every worker.
    let g = gen::random_labels(gen::gnp(110, 0.06, 127), 3, 0xfeed);
    let labels = g.labels().expect("labeled").to_vec();
    let pattern = Pattern::triangle(
        gthinker_graph::ids::Label(0),
        gthinker_graph::ids::Label(1),
        gthinker_graph::ids::Label(2),
    );
    let mapped_labels = MappedCopy::of(&g, "gm-labels").graph.labels().expect("mapped labels");
    assert_eq!(labels, mapped_labels);
    let (ram, mapped) =
        sim_both(|| Arc::new(MatchingApp::new(pattern.clone(), labels.clone())), &g, "gm");
    assert_eq!(ram, mapped);
}

/// Crash recovery off the mapped backing: a worker is killed mid-job,
/// the run restarts from the last validated checkpoint, and the final
/// answer still matches the fault-free in-RAM reference. This is the
/// contract that lets `.gtc` files back recovering cluster jobs —
/// restored tasks and re-spawned frontiers both decode lazily from the
/// same mapping.
#[test]
fn recovery_on_mapped_graph_matches_fault_free_ram_run() {
    let g = gen::barabasi_albert(700, 5, 137);
    let expected = run_job(Arc::new(TriangleApp), &g, &JobConfig::single_machine(2))
        .expect("reference")
        .global;

    let mapped = MappedCopy::of(&g, "recovery");
    let mut cfg = JobConfig::cluster(WORKERS, COMPERS);
    cfg.checkpoint_interval = Some(Duration::from_millis(150));
    // Generous heartbeat window: on a loaded test host a healthy sim
    // worker can go quiet for over a second, and a false positive here
    // burns a recovery attempt on nothing.
    cfg.heartbeat_timeout = Some(Duration::from_secs(5));
    cfg.fault = FaultConfig {
        crash: Some(CrashSchedule { worker: WorkerId(1), after_messages: Some(60), after: None }),
        ..FaultConfig::default()
    };
    let (result, report) =
        run_job_with_recovery_on(Arc::new(TriangleApp), mapped.source(), &cfg, 8)
            .expect("recovering mapped job");
    assert_eq!(result.outcome, JobOutcome::Completed);
    assert_eq!(result.global, expected, "recovered mapped run must match the fault-free count");
    assert!(report.recoveries >= 1, "the crash must actually fire: {report:?}");
    assert_eq!(report.failed_workers[0], WorkerId(1));
    assert!(
        result.workers.iter().all(|w| w.recoveries == report.recoveries as u64),
        "worker stats must carry the recovery count"
    );
}

/// The TCP scenario: three loopback worker threads, each opening the
/// compressed source, versus the in-RAM sim reference. Exercises the
/// responder path serving lazily decoded lists over the wire.
#[test]
fn tcp_cluster_on_mapped_graph_matches_in_ram_sim() {
    let g = gen::barabasi_albert(400, 4, 131);
    let reference = run_job(Arc::new(TriangleApp), &g, &JobConfig::cluster(WORKERS, COMPERS))
        .expect("sim job")
        .global;

    let mapped = MappedCopy::of(&g, "tcp");
    let mut cfg = JobConfig::cluster(WORKERS, COMPERS);
    cfg.sync_interval = Duration::from_millis(5);
    let (manifest, listeners) = ClusterManifest::loopback(WORKERS).expect("bind loopback");
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(w, listener)| {
            let source = mapped.source();
            let cfg = cfg.clone();
            let manifest = manifest.clone();
            std::thread::spawn(move || {
                run_worker_process_source_on(
                    Arc::new(TriangleApp),
                    source,
                    &cfg,
                    &manifest,
                    WorkerId(w as u16),
                    Duration::from_secs(20),
                    listener,
                )
                .expect("cluster worker")
            })
        })
        .collect();
    let mut master = None;
    let mut sent = 0u64;
    for h in handles {
        match h.join().expect("worker thread") {
            ClusterRole::Master(r) => {
                sent += r.workers[0].net_bytes_sent;
                master = Some(r);
            }
            ClusterRole::Worker(s, _) => sent += s.net_bytes_sent,
        }
    }
    let master = master.expect("worker 0 is the master");
    assert_eq!(master.global, reference);
    assert!(matches!(master.outcome, JobOutcome::Completed));
    assert!(sent > 0, "no bytes crossed the TCP mesh");
}
