//! Chaos equivalence: every miner, run over a seeded fault-injected
//! interconnect (dropped, duplicated and reordered data-plane messages
//! plus one scheduled worker crash) with automatic recovery, must
//! produce exactly the result of a fault-free run. A hang — lost
//! wakeup, un-retried pull, un-detected crash — fails the watchdog
//! instead of wedging CI.

use gthinker_apps::{
    KPlexApp, MatchingApp, MaxCliqueApp, MaximalCliqueApp, Pattern, QuasiCliqueApp, TriangleApp,
};
use gthinker_core::prelude::*;
use gthinker_core::RecoveryReport;
use gthinker_graph::gen;
use gthinker_graph::ids::WorkerId;
use gthinker_net::fault::{CrashSchedule, FaultConfig};
use std::sync::{mpsc, Arc};
use std::time::Duration;

const WATCHDOG: Duration = Duration::from_secs(180);
const MAX_RECOVERIES: u32 = 8;

/// Lossy-wire-plus-crash configuration: every fault class the injector
/// knows, all seeded, with worker 1 killed after `crash_after` router
/// messages. Pull deadlines are short so retries actually fire inside
/// the test's runtime.
fn chaos_config(seed: u64, crash_after: u64) -> JobConfig {
    let mut cfg = JobConfig::cluster(3, 2);
    cfg.cache.pull_timeout = Duration::from_millis(50);
    cfg.checkpoint_interval = Some(Duration::from_millis(150));
    cfg.heartbeat_timeout = Some(Duration::from_secs(1));
    cfg.fault = FaultConfig {
        seed,
        drop_prob: 0.05,
        dup_prob: 0.05,
        reorder_prob: 0.25,
        reorder_jitter: Duration::from_micros(500),
        spike_prob: 0.01,
        spike: Duration::from_millis(2),
        crash: Some(CrashSchedule {
            worker: WorkerId(1),
            after_messages: Some(crash_after),
            after: None,
        }),
    };
    cfg
}

/// Runs `f` on its own thread and panics if it outlives the watchdog.
fn with_watchdog<T: Send + 'static>(label: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(v) => {
            handle.join().unwrap();
            v
        }
        Err(_) => panic!("chaos job hung past {WATCHDOG:?} ({label})"),
    }
}

/// Fault-free reference vs. recovery-managed chaos run of the same
/// counting app; returns (expected, actual, report).
fn chaos_vs_clean<A: App>(
    app: impl Fn() -> A,
    g: &gthinker_graph::graph::Graph,
    seed: u64,
    crash_after: u64,
) -> (
    <A::Agg as gthinker_core::Aggregator>::Global,
    <A::Agg as gthinker_core::Aggregator>::Global,
    RecoveryReport,
) {
    let expected = run_job(Arc::new(app()), g, &JobConfig::single_machine(2)).unwrap().global;
    let (result, report) =
        run_job_with_recovery(Arc::new(app()), g, &chaos_config(seed, crash_after), MAX_RECOVERIES)
            .unwrap();
    assert_eq!(result.outcome, JobOutcome::Completed);
    (expected, result.global, report)
}

#[test]
fn triangles_survive_chaos_and_recovery() {
    let (expected, actual, report) = with_watchdog("tc", || {
        let g = gen::barabasi_albert(900, 5, 11);
        chaos_vs_clean(|| TriangleApp, &g, 0xC0FFEE, 60)
    });
    assert_eq!(actual, expected, "chaos run must match the fault-free count");
    // The crash fires well inside this workload, so the run must have
    // actually exercised the recovery path, not just survived drops.
    assert!(report.recoveries >= 1, "expected at least one recovery: {report:?}");
    assert_eq!(report.failed_workers[0], WorkerId(1), "the scheduled victim is detected");
}

#[test]
fn max_clique_survives_chaos_and_recovery() {
    let (g, expected, actual) = with_watchdog("mcf", || {
        let base = gen::barabasi_albert(600, 5, 23);
        let (g, planted) = gen::plant_clique(&base, 11, 29);
        let expected =
            run_job(Arc::new(MaxCliqueApp::default()), &g, &JobConfig::single_machine(2))
                .unwrap()
                .global;
        assert!(expected.len() >= planted.len());
        let (result, _report) = run_job_with_recovery(
            Arc::new(MaxCliqueApp::default()),
            &g,
            &chaos_config(0xBADC0DE, 60),
            MAX_RECOVERIES,
        )
        .unwrap();
        assert_eq!(result.outcome, JobOutcome::Completed);
        (g, expected, result.global)
    });
    // The maximum clique is unique only in size; check size and
    // validity rather than the vertex set.
    assert_eq!(actual.len(), expected.len(), "chaos run must find a maximum clique");
    for i in 0..actual.len() {
        for j in (i + 1)..actual.len() {
            assert!(g.has_edge(actual[i], actual[j]), "reported clique must be a clique");
        }
    }
}

#[test]
fn maximal_cliques_survive_chaos_and_recovery() {
    let (expected, actual, _report) = with_watchdog("mc", || {
        let g = gen::gnp(160, 0.08, 37);
        chaos_vs_clean(|| MaximalCliqueApp, &g, 0xFEED, 60)
    });
    assert_eq!(actual, expected, "chaos run must match the fault-free count");
}

#[test]
fn quasi_cliques_survive_chaos_and_recovery() {
    let (expected, actual, _report) = with_watchdog("qc", || {
        let g = gen::gnp(70, 0.12, 41);
        chaos_vs_clean(|| QuasiCliqueApp::new(0.6, 3, 5), &g, 0xD1CE, 40)
    });
    assert_eq!(actual, expected, "chaos run must match the fault-free count");
}

#[test]
fn kplexes_survive_chaos_and_recovery() {
    let (expected, actual, _report) = with_watchdog("kp", || {
        let g = gen::barabasi_albert(250, 5, 43);
        chaos_vs_clean(|| KPlexApp::new(2, 5, 8), &g, 0x5EED, 60)
    });
    assert_eq!(actual, expected, "chaos run must match the fault-free count");
}

#[test]
fn subgraph_matching_survives_chaos_and_recovery() {
    let (expected, actual, _report) = with_watchdog("gm", || {
        let g = gen::random_labels(gen::gnp(130, 0.10, 47), 2, 53);
        let labels = g.labels().unwrap().to_vec();
        let app = move || {
            MatchingApp::new(Pattern::triangle(Label(0), Label(0), Label(1)), labels.clone())
        };
        chaos_vs_clean(app, &g, 0xACE, 60)
    });
    assert_eq!(actual, expected, "chaos run must match the fault-free count");
}

#[test]
fn lossy_wire_without_crash_completes_via_retries() {
    // Drops/dups/reorder only — no crash, no recovery runner. The job
    // must complete through the pull-retry path alone, and the fault
    // and retry counters must show the wire was actually hostile.
    let (expected, result) = with_watchdog("lossy", || {
        let g = gen::barabasi_albert(700, 5, 59);
        let expected =
            run_job(Arc::new(TriangleApp), &g, &JobConfig::single_machine(2)).unwrap().global;
        let mut cfg = chaos_config(0xDEAF, 0);
        cfg.fault.crash = None;
        cfg.fault.drop_prob = 0.10;
        cfg.checkpoint_interval = None;
        let result = run_job(Arc::new(TriangleApp), &g, &cfg).unwrap();
        (expected, result)
    });
    assert_eq!(result.outcome, JobOutcome::Completed);
    assert_eq!(result.global, expected);
    let dropped: u64 = result.workers.iter().map(|w| w.net_msgs_dropped).sum();
    let retries: u64 = result.workers.iter().map(|w| w.pull_retries).sum();
    assert!(dropped > 0, "a 10% drop rate must actually drop something");
    assert!(retries > 0, "dropped pulls must be re-requested");
}

#[test]
fn lossy_tcp_wire_completes_via_retries() {
    use gthinker_core::{run_worker_process_on, ClusterRole};
    use gthinker_net::tcp::ClusterManifest;

    // The same seeded drop/dup injection, but on the real TCP loopback
    // backend: three workers on their own threads, framed sockets in
    // between, the shared fault runtime discarding and duplicating
    // data-plane frames. The job must still complete with the exact
    // fault-free answer through the pull-retry path.
    let (expected, global, stats) = with_watchdog("lossy-tcp", || {
        let g = gen::barabasi_albert(700, 5, 67);
        let expected =
            run_job(Arc::new(TriangleApp), &g, &JobConfig::single_machine(2)).unwrap().global;
        let mut cfg = chaos_config(0x7C9, 0);
        cfg.fault.crash = None;
        cfg.fault.drop_prob = 0.10;
        cfg.fault.dup_prob = 0.10;
        cfg.checkpoint_interval = None;
        cfg.heartbeat_timeout = None;
        let (manifest, listeners) = ClusterManifest::loopback(3).unwrap();
        let g = Arc::new(g);
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(w, listener)| {
                let (g, cfg, manifest) = (Arc::clone(&g), cfg.clone(), manifest.clone());
                std::thread::spawn(move || {
                    run_worker_process_on(
                        Arc::new(TriangleApp),
                        &g,
                        &cfg,
                        &manifest,
                        WorkerId(w as u16),
                        Duration::from_secs(20),
                        listener,
                    )
                    .expect("tcp chaos worker")
                })
            })
            .collect();
        let mut global = None;
        let mut stats = Vec::new();
        for h in handles {
            match h.join().expect("worker thread") {
                ClusterRole::Master(r) => {
                    assert_eq!(r.outcome, JobOutcome::Completed);
                    stats.push(r.workers[0].clone());
                    global = Some(r.global);
                }
                ClusterRole::Worker(s) => stats.push(s),
            }
        }
        (expected, global.unwrap(), stats)
    });
    assert_eq!(global, expected, "TCP chaos run must match the fault-free count");
    let dropped: u64 = stats.iter().map(|w| w.net_msgs_dropped).sum();
    let duplicated: u64 = stats.iter().map(|w| w.net_msgs_duplicated).sum();
    let retries: u64 = stats.iter().map(|w| w.pull_retries).sum();
    assert!(dropped > 0, "a 10% drop rate must actually drop TCP frames");
    assert!(duplicated > 0, "a 10% dup rate must actually duplicate TCP frames");
    assert!(retries > 0, "dropped pulls must be re-requested over TCP");
}

#[test]
fn fault_counters_are_zero_on_a_clean_wire() {
    let result = with_watchdog("clean", || {
        let g = gen::gnp(300, 0.05, 61);
        run_job(Arc::new(TriangleApp), &g, &JobConfig::cluster(3, 2)).unwrap()
    });
    for (w, stats) in result.workers.iter().enumerate() {
        assert_eq!(stats.net_msgs_dropped, 0, "worker {w}");
        assert_eq!(stats.net_msgs_duplicated, 0, "worker {w}");
        assert_eq!(stats.net_msgs_delayed, 0, "worker {w}");
        assert_eq!(stats.pull_retries, 0, "worker {w}");
    }
}
