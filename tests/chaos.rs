//! Chaos equivalence: every miner, run over a seeded fault-injected
//! interconnect (dropped, duplicated and reordered data-plane messages
//! plus one scheduled worker crash) with automatic recovery, must
//! produce exactly the result of a fault-free run. A hang — lost
//! wakeup, un-retried pull, un-detected crash — fails the watchdog
//! instead of wedging CI.

use gthinker_apps::{
    KPlexApp, MatchingApp, MaxCliqueApp, MaximalCliqueApp, Pattern, QuasiCliqueApp, SumAgg,
    TriangleApp,
};
use gthinker_core::prelude::*;
use gthinker_core::RecoveryReport;
use gthinker_graph::gen;
use gthinker_graph::ids::WorkerId;
use gthinker_graph::partition::HashPartitioner;
use gthinker_net::fault::{CrashSchedule, FaultConfig};
use std::sync::{mpsc, Arc};
use std::time::Duration;

const WATCHDOG: Duration = Duration::from_secs(180);
const MAX_RECOVERIES: u32 = 8;

/// Lossy-wire-plus-crash configuration: every fault class the injector
/// knows, all seeded, with worker 1 killed after `crash_after` router
/// messages. Pull deadlines are short so retries actually fire inside
/// the test's runtime.
fn chaos_config(seed: u64, crash_after: u64) -> JobConfig {
    let mut cfg = JobConfig::cluster(3, 2);
    cfg.cache.pull_timeout = Duration::from_millis(50);
    cfg.checkpoint_interval = Some(Duration::from_millis(150));
    cfg.heartbeat_timeout = Some(Duration::from_secs(1));
    cfg.fault = FaultConfig {
        seed,
        drop_prob: 0.05,
        dup_prob: 0.05,
        reorder_prob: 0.25,
        reorder_jitter: Duration::from_micros(500),
        spike_prob: 0.01,
        spike: Duration::from_millis(2),
        crash: Some(CrashSchedule {
            worker: WorkerId(1),
            after_messages: Some(crash_after),
            after: None,
        }),
    };
    cfg
}

/// Runs `f` on its own thread and panics if it outlives the watchdog.
fn with_watchdog<T: Send + 'static>(label: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(v) => {
            handle.join().unwrap();
            v
        }
        Err(_) => panic!("chaos job hung past {WATCHDOG:?} ({label})"),
    }
}

/// Fault-free reference vs. recovery-managed chaos run of the same
/// counting app; returns (expected, actual, report).
fn chaos_vs_clean<A: App>(
    app: impl Fn() -> A,
    g: &gthinker_graph::graph::Graph,
    seed: u64,
    crash_after: u64,
) -> (
    <A::Agg as gthinker_core::Aggregator>::Global,
    <A::Agg as gthinker_core::Aggregator>::Global,
    RecoveryReport,
) {
    let expected = run_job(Arc::new(app()), g, &JobConfig::single_machine(2)).unwrap().global;
    let (result, report) =
        run_job_with_recovery(Arc::new(app()), g, &chaos_config(seed, crash_after), MAX_RECOVERIES)
            .unwrap();
    assert_eq!(result.outcome, JobOutcome::Completed);
    (expected, result.global, report)
}

#[test]
fn triangles_survive_chaos_and_recovery() {
    let (expected, actual, report) = with_watchdog("tc", || {
        let g = gen::barabasi_albert(900, 5, 11);
        chaos_vs_clean(|| TriangleApp, &g, 0xC0FFEE, 60)
    });
    assert_eq!(actual, expected, "chaos run must match the fault-free count");
    // The crash fires well inside this workload, so the run must have
    // actually exercised the recovery path, not just survived drops.
    assert!(report.recoveries >= 1, "expected at least one recovery: {report:?}");
    assert_eq!(report.failed_workers[0], WorkerId(1), "the scheduled victim is detected");
}

#[test]
fn max_clique_survives_chaos_and_recovery() {
    let (g, expected, actual) = with_watchdog("mcf", || {
        let base = gen::barabasi_albert(600, 5, 23);
        let (g, planted) = gen::plant_clique(&base, 11, 29);
        let expected =
            run_job(Arc::new(MaxCliqueApp::default()), &g, &JobConfig::single_machine(2))
                .unwrap()
                .global;
        assert!(expected.len() >= planted.len());
        let (result, _report) = run_job_with_recovery(
            Arc::new(MaxCliqueApp::default()),
            &g,
            &chaos_config(0xBADC0DE, 60),
            MAX_RECOVERIES,
        )
        .unwrap();
        assert_eq!(result.outcome, JobOutcome::Completed);
        (g, expected, result.global)
    });
    // The maximum clique is unique only in size; check size and
    // validity rather than the vertex set.
    assert_eq!(actual.len(), expected.len(), "chaos run must find a maximum clique");
    for i in 0..actual.len() {
        for j in (i + 1)..actual.len() {
            assert!(g.has_edge(actual[i], actual[j]), "reported clique must be a clique");
        }
    }
}

#[test]
fn maximal_cliques_survive_chaos_and_recovery() {
    let (expected, actual, _report) = with_watchdog("mc", || {
        let g = gen::gnp(160, 0.08, 37);
        chaos_vs_clean(|| MaximalCliqueApp, &g, 0xFEED, 60)
    });
    assert_eq!(actual, expected, "chaos run must match the fault-free count");
}

#[test]
fn quasi_cliques_survive_chaos_and_recovery() {
    let (expected, actual, _report) = with_watchdog("qc", || {
        let g = gen::gnp(70, 0.12, 41);
        chaos_vs_clean(|| QuasiCliqueApp::new(0.6, 3, 5), &g, 0xD1CE, 40)
    });
    assert_eq!(actual, expected, "chaos run must match the fault-free count");
}

#[test]
fn kplexes_survive_chaos_and_recovery() {
    let (expected, actual, _report) = with_watchdog("kp", || {
        let g = gen::barabasi_albert(250, 5, 43);
        chaos_vs_clean(|| KPlexApp::new(2, 5, 8), &g, 0x5EED, 60)
    });
    assert_eq!(actual, expected, "chaos run must match the fault-free count");
}

#[test]
fn subgraph_matching_survives_chaos_and_recovery() {
    let (expected, actual, _report) = with_watchdog("gm", || {
        let g = gen::random_labels(gen::gnp(130, 0.10, 47), 2, 53);
        let labels = g.labels().unwrap().to_vec();
        let app = move || {
            MatchingApp::new(Pattern::triangle(Label(0), Label(0), Label(1)), labels.clone())
        };
        chaos_vs_clean(app, &g, 0xACE, 60)
    });
    assert_eq!(actual, expected, "chaos run must match the fault-free count");
}

#[test]
fn lossy_wire_without_crash_completes_via_retries() {
    // Drops/dups/reorder only — no crash, no recovery runner. The job
    // must complete through the pull-retry path alone, and the fault
    // and retry counters must show the wire was actually hostile.
    let (expected, result) = with_watchdog("lossy", || {
        let g = gen::barabasi_albert(700, 5, 59);
        let expected =
            run_job(Arc::new(TriangleApp), &g, &JobConfig::single_machine(2)).unwrap().global;
        let mut cfg = chaos_config(0xDEAF, 0);
        cfg.fault.crash = None;
        cfg.fault.drop_prob = 0.10;
        cfg.checkpoint_interval = None;
        let result = run_job(Arc::new(TriangleApp), &g, &cfg).unwrap();
        (expected, result)
    });
    assert_eq!(result.outcome, JobOutcome::Completed);
    assert_eq!(result.global, expected);
    let dropped: u64 = result.workers.iter().map(|w| w.net_msgs_dropped).sum();
    let retries: u64 = result.workers.iter().map(|w| w.pull_retries).sum();
    assert!(dropped > 0, "a 10% drop rate must actually drop something");
    assert!(retries > 0, "dropped pulls must be re-requested");
}

#[test]
fn lossy_tcp_wire_completes_via_retries() {
    use gthinker_core::{run_worker_process_on, ClusterRole};
    use gthinker_net::tcp::ClusterManifest;

    // The same seeded drop/dup injection, but on the real TCP loopback
    // backend: three workers on their own threads, framed sockets in
    // between, the shared fault runtime discarding and duplicating
    // data-plane frames. The job must still complete with the exact
    // fault-free answer through the pull-retry path — with periodic
    // telemetry reports streaming the whole time (the control plane is
    // not fault-injected, so the master's merged view must still cover
    // every worker).
    let (expected, global, stats, metrics) = with_watchdog("lossy-tcp", || {
        let g = gen::barabasi_albert(700, 5, 67);
        let expected =
            run_job(Arc::new(TriangleApp), &g, &JobConfig::single_machine(2)).unwrap().global;
        let mut cfg = chaos_config(0x7C9, 0);
        cfg.fault.crash = None;
        cfg.fault.drop_prob = 0.10;
        cfg.fault.dup_prob = 0.10;
        cfg.checkpoint_interval = None;
        cfg.heartbeat_timeout = None;
        cfg.report_interval = Some(Duration::from_millis(10));
        let (manifest, listeners) = ClusterManifest::loopback(3).unwrap();
        let g = Arc::new(g);
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(w, listener)| {
                let (g, cfg, manifest) = (Arc::clone(&g), cfg.clone(), manifest.clone());
                std::thread::spawn(move || {
                    run_worker_process_on(
                        Arc::new(TriangleApp),
                        &g,
                        &cfg,
                        &manifest,
                        WorkerId(w as u16),
                        Duration::from_secs(20),
                        listener,
                    )
                    .expect("tcp chaos worker")
                })
            })
            .collect();
        let mut global = None;
        let mut metrics = None;
        let mut stats = Vec::new();
        for h in handles {
            match h.join().expect("worker thread") {
                ClusterRole::Master(r) => {
                    assert_eq!(r.outcome, JobOutcome::Completed);
                    stats.push(r.workers[0].clone());
                    global = Some(r.global);
                    metrics = Some(r.metrics);
                }
                ClusterRole::Worker(s, _) => stats.push(s),
            }
        }
        (expected, global.unwrap(), stats, metrics.unwrap())
    });
    assert_eq!(global, expected, "TCP chaos run must match the fault-free count");
    let dropped: u64 = stats.iter().map(|w| w.net_msgs_dropped).sum();
    let duplicated: u64 = stats.iter().map(|w| w.net_msgs_duplicated).sum();
    let retries: u64 = stats.iter().map(|w| w.pull_retries).sum();
    assert!(dropped > 0, "a 10% drop rate must actually drop TCP frames");
    assert!(duplicated > 0, "a 10% dup rate must actually duplicate TCP frames");
    assert!(retries > 0, "dropped pulls must be re-requested over TCP");
    // The lossy data plane never touches the metrics stream: the
    // master's merged view still covers all three workers.
    assert_eq!(metrics.workers.len(), 3, "merged view has one entry per worker");
    for (w, m) in metrics.workers.iter().enumerate() {
        assert!(m.compute_calls > 0, "worker {w}'s final report missing from the merged view");
    }
}

/// Deterministic cluster skew: only vertices that hash to worker 0
/// spawn tasks (`STEAL_FAN` timed tasks each), so on a 3-worker run
/// workers 1 and 2 start idle and the master must broker cluster-wide
/// steals to balance. The aggregate is a pure function of the task
/// seeds — any schedule, steal interleaving, duplicate delivery or
/// resend must produce the identical sum.
struct StealSkewApp;

const STEAL_FAN: u64 = 24;

impl App for StealSkewApp {
    type Context = u64;
    type Agg = SumAgg;

    fn make_aggregator(&self) -> SumAgg {
        SumAgg
    }

    fn task_spawn(&self, v: VertexId, _adj: &AdjList, env: &mut SpawnEnv<'_, Self>) {
        // Hash with the *test's* worker count so the task set is the
        // same whether the reference run uses 1 worker or 3.
        if HashPartitioner::new(3).owner(v).index() != 0 {
            return;
        }
        for i in 0..STEAL_FAN {
            env.add_task(Task::new(u64::from(v.0) * 1000 + i));
        }
    }

    fn compute(
        &self,
        task: &mut Task<u64>,
        _frontier: &Frontier,
        env: &mut ComputeEnv<'_, Self>,
    ) -> bool {
        // A small think time keeps worker 0 loaded long enough for the
        // master to observe the imbalance and broker steals.
        std::thread::sleep(Duration::from_millis(1));
        env.aggregate(task.context.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40);
        false
    }
}

/// Skewed steal-forcing config on top of the chaotic wire: small task
/// batches so queue depth crosses the steal threshold, fast sync so
/// brokering keeps up with the short job.
fn steal_chaos_config(seed: u64, crash_after: Option<u64>) -> JobConfig {
    let mut cfg = match crash_after {
        Some(after) => chaos_config(seed, after),
        None => {
            let mut c = chaos_config(seed, 0);
            c.fault.crash = None;
            c.checkpoint_interval = None;
            c.heartbeat_timeout = None;
            c
        }
    };
    cfg.task_batch = 16;
    cfg.sync_interval = Duration::from_millis(5);
    cfg
}

#[test]
fn cluster_steals_survive_lossy_wire() {
    let (expected, result) = with_watchdog("steal-lossy", || {
        let g = gen::complete(30);
        let expected =
            run_job(Arc::new(StealSkewApp), &g, &JobConfig::single_machine(2)).unwrap().global;
        let mut cfg = steal_chaos_config(0x57EA1, None);
        cfg.fault.drop_prob = 0.20;
        cfg.fault.dup_prob = 0.20;
        let result = run_job(Arc::new(StealSkewApp), &g, &cfg).unwrap();
        (expected, result)
    });
    assert_eq!(result.outcome, JobOutcome::Completed);
    assert_eq!(result.global, expected, "steal chaos run must match the fault-free sum");
    let steals: u64 = result.workers.iter().map(|w| w.remote_steals).sum();
    let batch_bytes: u64 = result.workers.iter().map(|w| w.steal_batch_bytes).sum();
    // Steal frames are the only data-plane traffic here (the app pulls
    // nothing), so assert on the union of injected faults — each class
    // individually could legitimately draw zero on a short run.
    let faults: u64 = result
        .workers
        .iter()
        .map(|w| w.net_msgs_dropped + w.net_msgs_duplicated + w.net_msgs_delayed)
        .sum();
    assert!(steals > 0, "the skew must actually force cluster steals");
    assert!(batch_bytes > 0, "sealed batches must be accounted");
    assert!(faults > 0, "the hostile wire must actually touch steal frames");
}

#[test]
fn cluster_steals_survive_crash_and_recovery() {
    // Kill the thief mid-job: in-flight steal batches, the victim's
    // unacked ledger and the checkpointed queues must all reconcile so
    // the recovered run still produces the fault-free sum.
    let (expected, global, report) = with_watchdog("steal-crash", || {
        let g = gen::complete(30);
        let expected =
            run_job(Arc::new(StealSkewApp), &g, &JobConfig::single_machine(2)).unwrap().global;
        let cfg = steal_chaos_config(0x57EA2, Some(40));
        let (result, report) =
            run_job_with_recovery(Arc::new(StealSkewApp), &g, &cfg, MAX_RECOVERIES).unwrap();
        assert_eq!(result.outcome, JobOutcome::Completed);
        (expected, result.global, report)
    });
    assert_eq!(global, expected, "post-recovery sum must match the fault-free sum");
    assert!(report.recoveries >= 1, "the scheduled crash must fire: {report:?}");
}

#[test]
fn cluster_steals_survive_lossy_tcp_wire() {
    use gthinker_core::{run_worker_process_on, ClusterRole};
    use gthinker_net::tcp::ClusterManifest;

    // The same skewed steal-forcing workload on the real TCP loopback
    // backend: steal requests, batches and acks cross framed sockets
    // through the fault runtime, and the answer must still be exactly
    // the fault-free sum.
    let (expected, global, stats) = with_watchdog("steal-lossy-tcp", || {
        let g = gen::complete(30);
        let expected =
            run_job(Arc::new(StealSkewApp), &g, &JobConfig::single_machine(2)).unwrap().global;
        let mut cfg = steal_chaos_config(0x57EA3, None);
        cfg.fault.drop_prob = 0.20;
        cfg.fault.dup_prob = 0.20;
        let (manifest, listeners) = ClusterManifest::loopback(3).unwrap();
        let g = Arc::new(g);
        let handles: Vec<_> = listeners
            .into_iter()
            .enumerate()
            .map(|(w, listener)| {
                let (g, cfg, manifest) = (Arc::clone(&g), cfg.clone(), manifest.clone());
                std::thread::spawn(move || {
                    run_worker_process_on(
                        Arc::new(StealSkewApp),
                        &g,
                        &cfg,
                        &manifest,
                        WorkerId(w as u16),
                        Duration::from_secs(20),
                        listener,
                    )
                    .expect("tcp steal chaos worker")
                })
            })
            .collect();
        let mut global = None;
        let mut stats = Vec::new();
        for h in handles {
            match h.join().expect("worker thread") {
                ClusterRole::Master(r) => {
                    assert_eq!(r.outcome, JobOutcome::Completed);
                    stats.push(r.workers[0].clone());
                    global = Some(r.global);
                }
                ClusterRole::Worker(s, _) => stats.push(s),
            }
        }
        (expected, global.unwrap(), stats)
    });
    assert_eq!(global, expected, "TCP steal chaos run must match the fault-free sum");
    let steals: u64 = stats.iter().map(|w| w.remote_steals).sum();
    let faults: u64 =
        stats.iter().map(|w| w.net_msgs_dropped + w.net_msgs_duplicated + w.net_msgs_delayed).sum();
    assert!(steals > 0, "the skew must force cluster steals over TCP");
    assert!(faults > 0, "the hostile wire must actually touch TCP steal frames");
}

#[test]
fn fault_counters_are_zero_on_a_clean_wire() {
    let result = with_watchdog("clean", || {
        let g = gen::gnp(300, 0.05, 61);
        run_job(Arc::new(TriangleApp), &g, &JobConfig::cluster(3, 2)).unwrap()
    });
    for (w, stats) in result.workers.iter().enumerate() {
        assert_eq!(stats.net_msgs_dropped, 0, "worker {w}");
        assert_eq!(stats.net_msgs_duplicated, 0, "worker {w}");
        assert_eq!(stats.net_msgs_delayed, 0, "worker {w}");
        assert_eq!(stats.pull_retries, 0, "worker {w}");
    }
}
