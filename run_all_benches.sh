#!/usr/bin/env bash
# Regenerates every table and figure of the paper's evaluation.
# Build first: cargo build --release --workspace
# Usage: ./run_all_benches.sh [| tee bench_output.txt]
set -euo pipefail
BIN=target/release

# Fail loudly if the release binaries are missing rather than letting a
# half-built tree silently skip harnesses.
for b in table1_features table2_datasets table3_systems table_single_machine \
         table4a_horizontal table4b_vertical table4c_single table5a_cache \
         table5b_alpha fig2_crossover kernel_crossover ordering_effect \
         bundling_effect nscale_phases ablations sched_tail sched_cluster \
         metrics_overhead graph_storage net_throughput; do
  if [ ! -x "$BIN/$b" ]; then
    echo "error: $BIN/$b not found or not executable — run: cargo build --release --workspace" >&2
    exit 1
  fi
done

banner() { echo; echo "################################################################"; echo "## $1"; echo "################################################################"; }

banner "Table I — feature comparison"
"$BIN/table1_features"
banner "Table II — datasets"
"$BIN/table2_datasets" --scale 1
banner "Table III — distributed systems comparison"
"$BIN/table3_systems" --scale 0.2
banner "§VI — single-machine systems (RStream-like, Nuri-like)"
"$BIN/table_single_machine" --scale 1
banner "Table IV(a) — horizontal scalability"
"$BIN/table4a_horizontal" --scale 0.35
banner "Table IV(b) — vertical scalability"
"$BIN/table4b_vertical" --scale 0.3
banner "Table IV(c) — single-machine scalability"
"$BIN/table4c_single" --scale 0.6
banner "Table V(a) — vertex cache capacity"
"$BIN/table5a_cache" --scale 0.5
banner "Table V(b) — GC overflow tolerance α"
"$BIN/table5b_alpha" --scale 0.5
banner "Fig. 2 — IO vs CPU crossover"
"$BIN/fig2_crossover"
banner "Kernel selection — sorted-list vs bitset miners"
"$BIN/kernel_crossover" --scale 0.7
banner "§VI — vertex-ordering effect (Skitter anomaly)"
"$BIN/ordering_effect" --scale 0.6
banner "Future work [38] — low-degree task bundling"
"$BIN/bundling_effect" --scale 0.4
banner "§II — NScale construct-then-mine phases"
"$BIN/nscale_phases" --scale 0.3
banner "Design ablations"
"$BIN/ablations" --scale 0.35
banner "Tail-latency scheduler — intra-worker stealing + parking"
"$BIN/sched_tail" --scale 1
banner "Cluster-wide stealing — straggler splitting ablations"
"$BIN/sched_cluster" --scale 1
banner "Observability — metrics & tracing overhead"
"$BIN/metrics_overhead" --scale 1
banner "TCP data plane — evented vs threaded throughput"
"$BIN/net_throughput" --scale 1
banner "Compressed storage — ratio, decode cost, peak RSS"
# /usr/bin/time -v reports the harness's own peak RSS next to the
# per-phase VmHWM figures the binary writes into BENCH_storage.json.
if command -v /usr/bin/time >/dev/null && /usr/bin/time -v true 2>/dev/null; then
  /usr/bin/time -v "$BIN/graph_storage" --scale 1 2>&1 | grep -Ev '^\s*(Command being|User time|System time|Percent|Elapsed|Average|Major|Minor|Voluntary|Involuntary|Swaps|File system|Socket|Signals|Page size|Exit status)'
else
  # No GNU time: the per-phase VmHWM figures are still recorded in
  # BENCH_storage.json by the harness itself.
  "$BIN/graph_storage" --scale 1
fi
echo
echo "all harnesses completed"
