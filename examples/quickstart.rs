//! Quickstart: count triangles of a synthetic social network with
//! G-thinker, first on one simulated machine, then on a simulated
//! 4-machine cluster, and check both against the serial algorithm.
//!
//! Run with: `cargo run --release --example quickstart`

use gthinker_apps::serial::triangle::count_triangles;
use gthinker_apps::TriangleApp;
use gthinker_core::prelude::*;
use gthinker_graph::gen;
use std::sync::Arc;

fn main() {
    // A scale-free graph like the paper's social-network datasets.
    let graph = gen::barabasi_albert(20_000, 6, 42);
    println!("graph: {} vertices, {} edges", graph.num_vertices(), graph.num_edges());

    // Reference: the serial intersection-based counter.
    let serial_start = std::time::Instant::now();
    let expected = count_triangles(&graph);
    println!("serial count:      {expected:>12}   ({:.2?})", serial_start.elapsed());

    // One simulated machine, all local — pure CPU-bound mining.
    let single =
        run_job(Arc::new(TriangleApp), &graph, &JobConfig::single_machine(4)).expect("job runs");
    println!(
        "1 machine  × 4 compers: {:>8}   ({:.2?}, {} tasks)",
        single.global,
        single.elapsed,
        single.total_tasks()
    );
    assert_eq!(single.global, expected);

    // Four simulated machines over a GigE-like interconnect: tasks
    // pull remote adjacency lists through the vertex cache.
    let multi =
        run_job(Arc::new(TriangleApp), &graph, &JobConfig::cluster(4, 2)).expect("job runs");
    println!(
        "4 machines × 2 compers: {:>8}   ({:.2?}, {} KiB over the wire)",
        multi.global,
        multi.elapsed,
        multi.total_net_bytes() / 1024
    );
    assert_eq!(multi.global, expected);

    println!("all counts agree ✓");
}
