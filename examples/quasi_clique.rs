//! γ-quasi-clique counting — the paper's §III motivating example of a
//! task that pulls in two rounds: the anchor's neighbors first, then
//! the second hop, before mining its 2-hop ego network.
//!
//! Run with: `cargo run --release --example quasi_clique`

use gthinker_apps::QuasiCliqueApp;
use gthinker_core::prelude::*;
use gthinker_graph::gen;
use std::sync::Arc;

fn main() {
    let graph = gen::gnp(1_200, 0.003, 17);
    println!("graph: {} vertices, {} edges", graph.num_vertices(), graph.num_edges());

    for gamma in [0.5, 0.7, 0.9] {
        let single = run_job(
            Arc::new(QuasiCliqueApp::new(gamma, 3, 4)),
            &graph,
            &JobConfig::single_machine(4),
        )
        .expect("job runs");
        let multi =
            run_job(Arc::new(QuasiCliqueApp::new(gamma, 3, 4)), &graph, &JobConfig::cluster(3, 2))
                .expect("job runs");
        assert_eq!(single.global, multi.global);
        println!(
            "γ = {gamma}: {:>8} quasi-cliques of size 3–4  \
             (1 machine {:.2?}, 3 machines {:.2?})",
            single.global, single.elapsed, multi.elapsed
        );
    }
    println!("denser thresholds admit fewer quasi-cliques ✓");
}
