//! Live progress monitoring — the paper's periodic job-status
//! synchronization surfaced through `run_job_observed`: watch the
//! triangle count's task throughput, cache behaviour and network
//! volume evolve while the job runs.
//!
//! Run with: `cargo run --release --example progress_monitoring`

use gthinker_apps::TriangleApp;
use gthinker_core::prelude::*;
use gthinker_graph::gen;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let graph = gen::barabasi_albert(30_000, 8, 7);
    println!(
        "counting triangles of {} vertices / {} edges on a simulated 4-machine cluster\n",
        graph.num_vertices(),
        graph.num_edges()
    );
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "t", "done", "remaining", "hits", "misses", "net KiB"
    );
    let mut cfg = JobConfig::cluster(4, 2);
    cfg.sync_interval = Duration::from_millis(100);
    let result = run_job_observed(Arc::new(TriangleApp), &graph, &cfg, |s| {
        println!(
            "{:>7.1}s {:>10} {:>10} {:>10} {:>10} {:>10}",
            s.elapsed.as_secs_f64(),
            s.tasks_finished,
            s.remaining,
            s.cache_hits,
            s.cache_misses,
            s.net_bytes / 1024
        );
    })
    .expect("job runs");
    println!(
        "\nfinal count: {} in {:.2?} ({} tasks)",
        result.global,
        result.elapsed,
        result.total_tasks()
    );
}
