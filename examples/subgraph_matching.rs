//! Labeled subgraph matching: count embeddings of small query patterns
//! in a labeled data graph, with label-based trimming reducing the
//! adjacency lists shipped over the (simulated) wire.
//!
//! Run with: `cargo run --release --example subgraph_matching`

use gthinker_apps::{MatchingApp, Pattern};
use gthinker_core::prelude::*;
use gthinker_graph::gen;
use std::sync::Arc;

fn main() {
    // A labeled scale-free data graph: 5 labels.
    let data = gen::random_labels(gen::barabasi_albert(8_000, 5, 11), 5, 99);
    println!("data graph: {} vertices, {} edges, 5 labels", data.num_vertices(), data.num_edges());

    let queries: Vec<(&str, Pattern)> = vec![
        ("triangle 0-1-2", Pattern::triangle(Label(0), Label(1), Label(2))),
        ("triangle 0-1-1", Pattern::triangle(Label(0), Label(1), Label(1))),
        ("path 2-0-2   ", Pattern::path3(Label(2), Label(0), Label(2))),
    ];

    for (name, pattern) in queries {
        let labels = data.labels().expect("labeled").to_vec();
        let single = run_job(
            Arc::new(MatchingApp::new(pattern.clone(), labels.clone())),
            &data,
            &JobConfig::single_machine(4),
        )
        .expect("job runs");
        let multi =
            run_job(Arc::new(MatchingApp::new(pattern, labels)), &data, &JobConfig::cluster(3, 2))
                .expect("job runs");
        assert_eq!(single.global, multi.global);
        println!(
            "query {name}: {:>9} embeddings  (1 machine {:.2?}, 3 machines {:.2?})",
            single.global, single.elapsed, multi.elapsed
        );
    }
    println!("single-machine and distributed counts agree ✓");
}
