//! Maximum clique finding on a Friendster-like stand-in graph — the
//! paper's headline experiment (it finds a 129-vertex clique in the
//! real Friendster; the stand-in plants a smaller one at its scale).
//!
//! Demonstrates the Fig. 5 application: spawn-time pruning against the
//! aggregator-broadcast best clique, τ-threshold decomposition, and
//! the distributed run agreeing with the single-machine run.
//!
//! Run with: `cargo run --release --example maximum_clique`

use gthinker_apps::MaxCliqueApp;
use gthinker_core::prelude::*;
use gthinker_graph::datasets::{self, DatasetKind};
use std::sync::Arc;

fn main() {
    let dataset = datasets::generate(DatasetKind::Friendster, 0.5);
    let g = &dataset.graph;
    println!(
        "{}: {} vertices, {} edges, planted clique of {}",
        dataset.kind.name(),
        g.num_vertices(),
        g.num_edges(),
        dataset.planted_clique.len()
    );

    // Single machine (Table IV(c) setting): no remote pulls at all.
    let single = run_job(Arc::new(MaxCliqueApp::default()), g, &JobConfig::single_machine(4))
        .expect("job runs");
    println!(
        "1 machine:  clique of {:>3} in {:.2?} (peak mem ~{} MiB)",
        single.global.len(),
        single.elapsed,
        single.peak_mem_bytes() >> 20
    );

    // Simulated 4-machine cluster with work stealing.
    let multi =
        run_job(Arc::new(MaxCliqueApp::default()), g, &JobConfig::cluster(4, 2)).expect("job runs");
    println!(
        "4 machines: clique of {:>3} in {:.2?} ({} KiB network)",
        multi.global.len(),
        multi.elapsed,
        multi.total_net_bytes() / 1024
    );

    assert_eq!(single.global.len(), multi.global.len());
    assert!(
        single.global.len() >= dataset.planted_clique.len(),
        "must at least find the planted clique"
    );
    // Verify the witness.
    let c = &multi.global;
    for i in 0..c.len() {
        for j in (i + 1)..c.len() {
            assert!(g.has_edge(c[i], c[j]), "result is not a clique!");
        }
    }
    println!("witness verified: {} mutually adjacent vertices ✓", c.len());
}
