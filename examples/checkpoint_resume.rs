//! Fault tolerance: suspend a running job into a checkpoint, then
//! resume it and finish — the paper's §V-B checkpointing, where task
//! containers and the spawn pointer are committed and pending tasks
//! re-pull their vertices on restart (the cache starts cold).
//!
//! Run with: `cargo run --release --example checkpoint_resume`

use gthinker_apps::MaxCliqueApp;
use gthinker_core::prelude::*;
use gthinker_graph::gen;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let base = gen::barabasi_albert(30_000, 8, 3);
    let (graph, planted) = gen::plant_clique(&base, 14, 4);
    println!(
        "MCF on {} vertices / {} edges (planted clique: {})",
        graph.num_vertices(),
        graph.num_edges(),
        planted.len()
    );

    // Run with an aggressive suspension deadline.
    let ckpt_dir = std::env::temp_dir().join("gthinker-example-ckpt");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let mut cfg = JobConfig::cluster(2, 2);
    cfg.suspend_after = Some(Duration::from_millis(60));
    cfg.checkpoint_dir = Some(ckpt_dir);

    let mut attempt = 1;
    let mut result = run_job(Arc::new(MaxCliqueApp::default()), &graph, &cfg).expect("job runs");
    loop {
        match result.outcome {
            JobOutcome::Completed => break,
            JobOutcome::Failed { worker } => {
                panic!("no faults are injected here, yet worker {worker:?} was declared dead")
            }
            JobOutcome::Suspended { checkpoint } => {
                println!(
                    "attempt {attempt}: suspended after {:.2?} — checkpoint at {}",
                    result.elapsed,
                    checkpoint.display()
                );
                attempt += 1;
                cfg.suspend_after = Some(Duration::from_millis(60 * (1 << attempt)));
                result = resume_job(Arc::new(MaxCliqueApp::default()), &graph, &cfg, &checkpoint)
                    .expect("resume runs");
            }
        }
    }
    println!(
        "attempt {attempt}: completed — maximum clique of {} in {:.2?}",
        result.global.len(),
        result.elapsed
    );
    assert!(result.global.len() >= planted.len());
    // The clique is a genuine witness.
    for i in 0..result.global.len() {
        for j in (i + 1)..result.global.len() {
            assert!(graph.has_edge(result.global[i], result.global[j]));
        }
    }
    println!("witness verified across {} suspension(s) ✓", attempt - 1);
}
